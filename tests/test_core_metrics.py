"""Metric records and series containers."""

import numpy as np
import pytest

from repro.core.metrics import LinkMetricRecord, MetricSeries


def test_record_validation():
    good = LinkMetricRecord(time=0.0, src="0", dst="1", medium="plc",
                            capacity_bps=1e8, pb_err=0.02)
    assert good.capacity_mbps == 100.0
    with pytest.raises(ValueError):
        LinkMetricRecord(0.0, "0", "1", "coax", 1e8)
    with pytest.raises(ValueError):
        LinkMetricRecord(0.0, "0", "1", "plc", -1.0)
    with pytest.raises(ValueError):
        LinkMetricRecord(0.0, "0", "1", "plc", 1e8, pb_err=1.5)


def test_series_requires_aligned_monotone_times():
    with pytest.raises(ValueError):
        MetricSeries([0, 1], [1.0])
    with pytest.raises(ValueError):
        MetricSeries([1, 0], [1.0, 2.0])


def test_series_stats():
    s = MetricSeries([0, 1, 2, 3], [10.0, 20.0, 30.0, 40.0])
    assert s.mean == 25.0
    assert s.std == pytest.approx(np.std([10, 20, 30, 40]))
    assert len(s) == 4


def test_window_selects_half_open_interval():
    s = MetricSeries([0, 1, 2, 3], [1.0, 2.0, 3.0, 4.0])
    w = s.window(1, 3)
    assert list(w.values) == [2.0, 3.0]


def test_resample_mean_bins():
    s = MetricSeries([0.0, 0.4, 1.1, 1.9], [2.0, 4.0, 10.0, 20.0])
    r = s.resample_mean(1.0)
    assert list(r.values) == [3.0, 15.0]
    with pytest.raises(ValueError):
        s.resample_mean(0.0)


def test_change_times_detects_value_changes():
    s = MetricSeries([0, 1, 2, 3, 4], [5.0, 5.0, 6.0, 6.0, 5.0])
    changes = s.change_times()
    assert list(changes) == [2, 4]


def test_change_times_threshold_filters_noise():
    s = MetricSeries([0, 1, 2], [100.0, 100.05, 120.0])
    assert list(s.change_times(rel_threshold=0.01)) == [2]


def test_from_samples_extracts_attributes(testbed, t_work):
    link = testbed.plc_link(0, 1)
    samples = [link.sample(t_work + k) for k in range(3)]
    series = MetricSeries.from_samples(samples)
    assert len(series) == 3
    assert series.values[0] == samples[0].throughput_bps
