"""Probing policies and overhead accounting (§7.3, §8.2)."""

import pytest

from repro.core.probing import (
    AdaptiveProbingPolicy,
    FixedProbingPolicy,
    ProbeSchedule,
    contention_safe_schedule,
    network_overhead_bps,
    overhead_reduction,
)
from repro.units import MBPS


def test_schedule_validation():
    with pytest.raises(ValueError):
        ProbeSchedule(interval_s=0.0)
    with pytest.raises(ValueError):
        ProbeSchedule(interval_s=1.0, payload_bytes=0)
    with pytest.raises(ValueError):
        ProbeSchedule(interval_s=1.0, burst_packets=0)


def test_schedule_overhead():
    s = ProbeSchedule(interval_s=5.0, payload_bytes=1500)
    assert s.overhead_bps() == pytest.approx(1500 * 8 / 5.0)


def test_fixed_policy_ignores_quality():
    policy = FixedProbingPolicy(5.0)
    assert policy.schedule_for(10 * MBPS).interval_s == 5.0
    assert policy.schedule_for(140 * MBPS).interval_s == 5.0


def test_adaptive_policy_uses_paper_factors():
    """§7.3: bad every 5 s, average 8× slower, good 16× slower."""
    policy = AdaptiveProbingPolicy()
    assert policy.interval_for(30 * MBPS) == 5.0
    assert policy.interval_for(80 * MBPS) == 40.0
    assert policy.interval_for(120 * MBPS) == 80.0


def test_adaptive_policy_validates_factors():
    with pytest.raises(ValueError):
        AdaptiveProbingPolicy(average_factor=16.0, good_factor=8.0)


def test_overhead_reduction_matches_paper_ballpark():
    """The paper reports ~32 % reduction on its testbed mix."""
    # A mix of qualities: 6 bad, 4 average, 4 good (roughly the testbed's).
    bles = [30 * MBPS] * 6 + [80 * MBPS] * 4 + [120 * MBPS] * 4
    reduction = overhead_reduction(AdaptiveProbingPolicy(),
                                   FixedProbingPolicy(5.0), bles)
    assert 0.2 < reduction < 0.6


def test_network_overhead_sums_links():
    policy = FixedProbingPolicy(5.0)
    one = network_overhead_bps(policy, [50 * MBPS])
    four = network_overhead_bps(policy, [50 * MBPS] * 4)
    assert four == pytest.approx(4 * one)


def test_contention_safe_schedule_preserves_average_load():
    base = ProbeSchedule(interval_s=0.075, payload_bytes=1500)
    safe = contention_safe_schedule(base, burst_packets=20)
    assert safe.burst_packets == 20
    assert safe.overhead_bps() == pytest.approx(base.overhead_bps())
    assert safe.interval_s == pytest.approx(1.5)
