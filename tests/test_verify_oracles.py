"""Differential-oracle tests: each oracle passes on the real
implementations and catches a planted divergence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.spec import ExperimentSpec
from repro.faults.plan import FaultPlan, FaultPlanConfig
from repro.netsim.runner import ScenarioRunner
from repro.netsim.scenario import FlowRequest, Scenario
from repro.testbed import build_preset_testbed
from repro.verify.oracles import (
    diff_backend_equivalence,
    diff_default_horizon,
    diff_fault_replay,
    diff_inline_vs_pool,
    diff_scalar_vs_vectorized,
    diff_seed_relabeling,
    diff_traced_vs_untraced,
)

SEED = 7


@pytest.fixture(scope="module")
def mini3():
    return build_preset_testbed("mini3", seed=SEED)


def _bulk_scenario(t0=100.0):
    """A file flow far too large to finish — the input class on which the
    default-horizon contract actually matters."""
    scenario = Scenario("oracle-bulk")
    scenario.add(FlowRequest("sat", 0, 1, t0, kind="saturated",
                             medium="plc", duration_s=8.0))
    scenario.add(FlowRequest("bulk", 1, 2, t0, kind="file", medium="plc",
                             size_bytes=1e12))
    return scenario


# --- scalar vs vectorized -----------------------------------------------------


@pytest.mark.parametrize("medium", ["plc", "wifi"])
@pytest.mark.parametrize("measured", [True, False])
def test_scalar_vs_vectorized_agree(medium, measured):
    ts = np.arange(40.0, 44.0, 0.5)
    a = build_preset_testbed("mini3", seed=SEED).link(medium, 0, 1)
    b = build_preset_testbed("mini3", seed=SEED).link(medium, 0, 1)
    assert diff_scalar_vs_vectorized(a, b, ts, measured=measured) == []


def test_scalar_vs_vectorized_flags_noise_stream_skew(mini3):
    """Same link object on both paths: the batch pass consumes the noise
    stream the scalar pass then resumes from — exactly the bug class the
    oracle exists for."""
    link = mini3.link("plc", 0, 1)
    diffs = diff_scalar_vs_vectorized(link, link,
                                      np.arange(40.0, 44.0, 0.5))
    assert diffs and any("differs" in d for d in diffs)


# --- runner horizon & fault replay --------------------------------------------


def test_default_horizon_oracle_passes(mini3):
    assert diff_default_horizon(mini3, _bulk_scenario()) == []


def test_default_horizon_oracle_catches_legacy_double_offset(mini3):
    def legacy_factory(testbed, **kwargs):
        return ScenarioRunner(testbed, legacy_default_horizon=True,
                              **kwargs)

    diffs = diff_default_horizon(mini3, _bulk_scenario(),
                                 runner_factory=legacy_factory)
    assert diffs and any("bulk" in d for d in diffs)


def test_default_horizon_oracle_trivial_on_empty_scenario(mini3):
    assert diff_default_horizon(mini3, Scenario("empty")) == []


def test_fault_replay_oracle_passes(mini3):
    plan = FaultPlan.generate(
        root_seed=SEED, name="oracle", horizon_s=30.0,
        targets={"links": ["plc:0-1", "wifi:1-2"]},
        config=FaultPlanConfig(outages=1, degradations=1,
                               snr_collapses=1),
        t0=100.0)
    scenario = Scenario("faulted")
    scenario.add(FlowRequest("sat", 0, 1, 100.0, kind="saturated",
                             medium="plc", duration_s=10.0))
    assert diff_fault_replay(mini3, scenario, plan,
                             horizon_s=30.0) == []


# --- campaign artifact equivalences -------------------------------------------


def _probe_specs(n=3):
    return [ExperimentSpec.make("rng_probe", "mini3", seed=SEED + k,
                                draws=3) for k in range(n)]


def test_inline_vs_pool_and_traced_vs_untraced(tmp_path):
    specs = _probe_specs()
    assert diff_inline_vs_pool(specs, tmp_path / "pool",
                               workers=2) == []
    assert diff_traced_vs_untraced(specs, tmp_path / "trace") == []


def test_inline_vs_pool_creates_missing_out_dir(tmp_path):
    nested = tmp_path / "a" / "b" / "c"
    assert diff_inline_vs_pool(_probe_specs(1), nested, workers=2) == []
    assert (nested / "inline.jsonl").exists()


def test_backend_equivalence_oracle_passes_on_mixed_kinds(tmp_path):
    """Every execution backend must produce the same artifact and trace
    bytes on a campaign mixing testbed-bound and testbed-free kinds."""
    specs = _probe_specs(2) + [
        ExperimentSpec.make("survey_pair", "mini3", seed=SEED,
                            src=0, dst=1, duration_s=1.0,
                            interval_s=0.5)]
    assert diff_backend_equivalence(specs, tmp_path / "backends",
                                    chunk_size=2) == []
    for backend, workers in [("inline", 0), ("process", 4),
                             ("thread", 4), ("chunked", 4)]:
        assert (tmp_path / "backends"
                / f"{backend}-w{workers}.jsonl").exists()


# --- seed relabeling ----------------------------------------------------------


def test_seed_relabeling_passes_for_pure_function():
    assert diff_seed_relabeling(lambda s: float(s * s),
                                [3, 1, 2]) == []


def test_seed_relabeling_catches_order_dependence():
    state = {"last": 0.0}

    def leaky(seed):
        state["last"] += seed
        return state["last"]

    diffs = diff_seed_relabeling(leaky, [1, 2, 3])
    assert diffs and any("forward order" in d for d in diffs)
