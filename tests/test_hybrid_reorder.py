"""Destination-side reorder buffer."""

import pytest

from repro.hybrid.reorder import ReorderBuffer
from repro.traffic.packet import Packet


def _p(seq):
    return Packet(seq=seq, created_at=0.0)


def test_in_order_stream_passes_through():
    buf = ReorderBuffer()
    released = []
    for k in range(5):
        released += [p.seq for p in buf.push(_p(k), now=k * 0.01)]
    assert released == [0, 1, 2, 3, 4]
    assert buf.stats.reordered_arrivals == 0
    assert buf.stats.holes_flushed == 0


def test_out_of_order_is_held_then_released_in_order():
    buf = ReorderBuffer()
    assert buf.push(_p(1), now=0.0) == []       # hole at 0
    released = buf.push(_p(0), now=0.01)
    assert [p.seq for p in released] == [0, 1]
    assert buf.stats.reordered_arrivals == 1


def test_hole_timeout_flushes():
    buf = ReorderBuffer(hole_timeout_s=0.05)
    buf.push(_p(1), now=0.0)
    released = buf.push(_p(2), now=0.1)  # timeout exceeded → skip seq 0
    assert [p.seq for p in released] == [1, 2]
    assert buf.stats.holes_flushed == 1


def test_late_duplicate_of_flushed_packet_dropped():
    buf = ReorderBuffer(hole_timeout_s=0.05)
    buf.push(_p(1), now=0.0)
    buf.push(_p(2), now=0.1)
    assert buf.push(_p(0), now=0.2) == []  # too late; already skipped


def test_window_overflow_flushes():
    buf = ReorderBuffer(hole_timeout_s=10.0, max_window=3)
    for k in (1, 2, 3):
        assert buf.push(_p(k), now=0.001 * k) == []
    released = buf.push(_p(4), now=0.004)
    assert [p.seq for p in released] == [1, 2, 3, 4]


def test_jitter_statistic():
    buf = ReorderBuffer()
    for k in range(10):
        buf.push(_p(k), now=0.01 * k)
    assert buf.stats.jitter_s() == pytest.approx(0.0, abs=1e-9)
    assert buf.stats.delivered == 10


def test_hole_timer_restarts_when_next_seq_advances():
    """Regression: after one flush, the *next* hole's timer stayed unset
    until the following push, so a packet behind a second hole waited
    ~2-3x ``hole_timeout_s`` — inflating the Fig. 20 jitter statistics.
    The timer must restart whenever ``_next_seq`` advances."""
    buf = ReorderBuffer(hole_timeout_s=0.05)
    buf.push(_p(1), now=0.00)
    buf.push(_p(3), now=0.01)                 # holes at 0 and 2
    released = buf.push(_p(5), now=0.06)      # hole 0 times out
    assert [p.seq for p in released] == [1]
    assert buf.stats.holes_flushed == 1
    # The hole at 2 became head-of-buffer at the flush (t=0.06); by 0.13
    # it has waited 0.07 > hole_timeout_s and must flush, releasing 3.
    released = buf.push(_p(6), now=0.13)
    assert [p.seq for p in released] == [3]
    assert buf.stats.holes_flushed == 2
    # Bounded added delay (Fig. 20's jitter guarantee): packet 3 leaves at
    # the first push after flush-time + timeout, not several pushes later.
    assert released[0].delivered_at == pytest.approx(0.13)
    assert buf.stats.delivered == 2


def test_hole_timer_restarts_after_partial_catch_up():
    """Draining part of the buffer starts the clock of the newly exposed
    hole at the drain time, not at the old hole's baseline."""
    buf = ReorderBuffer(hole_timeout_s=0.05)
    buf.push(_p(1), now=0.00)
    buf.push(_p(3), now=0.01)
    released = buf.push(_p(0), now=0.04)      # fills hole 0 → release 0,1
    assert [p.seq for p in released] == [0, 1]
    # Hole at 2 became head at t=0.04; 0.08 is only 0.04 later → no flush.
    assert buf.push(_p(4), now=0.08) == []
    assert buf.stats.holes_flushed == 0
    released = buf.push(_p(5), now=0.10)      # 0.06 elapsed → flush
    assert [p.seq for p in released] == [3, 4, 5]
    assert buf.stats.holes_flushed == 1


def test_constructor_validation():
    with pytest.raises(ValueError):
        ReorderBuffer(hole_timeout_s=0.0)
    with pytest.raises(ValueError):
        ReorderBuffer(max_window=0)


# --- stateful property: the buffer under arbitrary arrival chaos -------------

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule


def _pkt(seq, now):
    return Packet(seq=seq, size_bytes=1500, created_at=now)


class ReorderMachine(RuleBasedStateMachine):
    """Arbitrary interleavings of pushes, duplicates, gaps and idle polls.

    Contracts under test:

    * no sequence number is ever delivered twice;
    * delivery order is strictly increasing (in-order release);
    * no *live* packet is dropped — everything accepted while still
      ahead of the release point comes out by the final flush.
    """

    def __init__(self):
        super().__init__()
        self.buffer = ReorderBuffer(hole_timeout_s=0.05, max_window=16)
        self.now = 0.0
        self.accepted = set()
        self.released = []

    def _absorb(self, packets):
        self.released.extend(p.seq for p in packets)

    @rule(seq=st.integers(min_value=0, max_value=63),
          dt=st.floats(min_value=0.0, max_value=0.1))
    def push(self, seq, dt):
        self.now += dt
        if seq >= self.buffer._next_seq:
            self.accepted.add(seq)  # not a late duplicate: must come out
        self._absorb(self.buffer.push(_pkt(seq, self.now), self.now))

    @rule(dt=st.floats(min_value=0.0, max_value=0.2))
    def idle_poll(self, dt):
        self.now += dt
        self._absorb(self.buffer.poll(self.now))

    @invariant()
    def released_strictly_increasing_and_accounted(self):
        assert all(a < b for a, b in zip(self.released,
                                         self.released[1:]))
        assert set(self.released) <= self.accepted

    def teardown(self):
        self._absorb(self.buffer.flush(self.now))
        assert self.buffer.pending_count == 0
        assert all(a < b for a, b in zip(self.released,
                                         self.released[1:]))
        assert set(self.released) == self.accepted
        super().teardown()


ReorderMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None)
TestReorderBufferStateful = ReorderMachine.TestCase
