"""Destination-side reorder buffer."""

import pytest

from repro.hybrid.reorder import ReorderBuffer
from repro.traffic.packet import Packet


def _p(seq):
    return Packet(seq=seq, created_at=0.0)


def test_in_order_stream_passes_through():
    buf = ReorderBuffer()
    released = []
    for k in range(5):
        released += [p.seq for p in buf.push(_p(k), now=k * 0.01)]
    assert released == [0, 1, 2, 3, 4]
    assert buf.stats.reordered_arrivals == 0
    assert buf.stats.holes_flushed == 0


def test_out_of_order_is_held_then_released_in_order():
    buf = ReorderBuffer()
    assert buf.push(_p(1), now=0.0) == []       # hole at 0
    released = buf.push(_p(0), now=0.01)
    assert [p.seq for p in released] == [0, 1]
    assert buf.stats.reordered_arrivals == 1


def test_hole_timeout_flushes():
    buf = ReorderBuffer(hole_timeout_s=0.05)
    buf.push(_p(1), now=0.0)
    released = buf.push(_p(2), now=0.1)  # timeout exceeded → skip seq 0
    assert [p.seq for p in released] == [1, 2]
    assert buf.stats.holes_flushed == 1


def test_late_duplicate_of_flushed_packet_dropped():
    buf = ReorderBuffer(hole_timeout_s=0.05)
    buf.push(_p(1), now=0.0)
    buf.push(_p(2), now=0.1)
    assert buf.push(_p(0), now=0.2) == []  # too late; already skipped


def test_window_overflow_flushes():
    buf = ReorderBuffer(hole_timeout_s=10.0, max_window=3)
    for k in (1, 2, 3):
        assert buf.push(_p(k), now=0.001 * k) == []
    released = buf.push(_p(4), now=0.004)
    assert [p.seq for p in released] == [1, 2, 3, 4]


def test_jitter_statistic():
    buf = ReorderBuffer()
    for k in range(10):
        buf.push(_p(k), now=0.01 * k)
    assert buf.stats.jitter_s() == pytest.approx(0.0, abs=1e-9)
    assert buf.stats.delivered == 10


def test_constructor_validation():
    with pytest.raises(ValueError):
        ReorderBuffer(hole_timeout_s=0.0)
    with pytest.raises(ValueError):
        ReorderBuffer(max_window=0)
