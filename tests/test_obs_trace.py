"""Sim-time tracing: the tracer, the task-scoped install, the sidecar.

The sidecar identity contract — header line plus events sorted by
``(task_key, seq)``, canonical JSON — is what makes a traced campaign's
``.trace.jsonl`` byte-identical at any worker count; the end-to-end check
lives in ``tests/test_campaign_properties.py``, the mechanism is pinned
here.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    FakeClock,
    TraceEvent,
    Tracer,
    current_tracer,
    read_trace,
    task_trace,
    trace_path_for,
    write_trace,
)


# --- the tracer ---------------------------------------------------------------


def test_events_and_spans_carry_sim_time_only():
    tracer = Tracer()
    tracer.event("flow_done", 12.5, flow="cbr")
    tracer.span("run", 10.0, 20.0, quanta=40)
    point, span = tracer.events
    assert point.sim_time == 12.5 and point.duration_s is None
    assert point.attrs == {"flow": "cbr"} and point.wall is None
    assert span.sim_time == 10.0 and span.duration_s == 10.0
    assert span.wall is None
    assert "wall" not in point.to_dict()


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.event("x", 1.0)
    tracer.span("y", 1.0, 2.0)
    assert tracer.events == []
    assert NULL_TRACER.enabled is False


def test_wall_clock_annotation_is_opt_in():
    tracer = Tracer(wall_clock=FakeClock(start=42.0))
    tracer.event("x", 1.0)
    assert tracer.events[0].wall == 42.0
    assert tracer.to_dicts()[0]["wall"] == 42.0


def test_event_roundtrips_through_dict():
    event = TraceEvent("a", 3.0, duration_s=1.5, attrs={"k": 1})
    assert TraceEvent.from_dict(event.to_dict()) == event


# --- the task-scoped current tracer -------------------------------------------


def test_task_trace_installs_and_restores():
    assert current_tracer() is NULL_TRACER
    with task_trace(enabled=True) as tracer:
        assert current_tracer() is tracer
        current_tracer().event("inside", 5.0)
    assert current_tracer() is NULL_TRACER
    assert [e.name for e in tracer.events] == ["inside"]


def test_task_trace_restores_on_error():
    with pytest.raises(RuntimeError):
        with task_trace(enabled=True):
            raise RuntimeError("boom")
    assert current_tracer() is NULL_TRACER


def test_task_trace_disabled_still_scopes():
    with task_trace(enabled=False) as tracer:
        current_tracer().event("dropped", 1.0)
    assert tracer.events == []


def test_task_trace_is_thread_local():
    """Regression: the ``thread`` execution backend runs tasks
    concurrently in one process; overlapping installs on a process-
    global slot captured each other's events (or none)."""
    import threading

    captured = {}
    barrier = threading.Barrier(4)

    def worker(name):
        with task_trace(enabled=True) as tracer:
            barrier.wait()  # every thread holds its tracer at once
            assert current_tracer() is tracer
            tracer.event(name, 1.0)
            barrier.wait()  # nobody restores until all have emitted
        captured[name] = [e.name for e in tracer.events]
        assert current_tracer() is NULL_TRACER

    threads = [threading.Thread(target=worker, args=(f"task-{k}",))
               for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert captured == {f"task-{k}": [f"task-{k}"] for k in range(4)}


# --- the sidecar --------------------------------------------------------------


def test_trace_path_for_mirrors_quarantine_convention(tmp_path):
    assert trace_path_for(tmp_path / "camp.jsonl") == \
        tmp_path / "camp.trace.jsonl"


def _events(n, offset=0.0):
    tracer = Tracer()
    for k in range(n):
        tracer.event("quantum", offset + k)
    return tracer.to_dicts()


def test_write_trace_is_canonical_in_task_order(tmp_path):
    by_task = {"b/task": _events(2, 10.0), "a/task": _events(3)}
    path_a = write_trace(tmp_path / "a.trace.jsonl", by_task, name="t")
    reversed_order = dict(reversed(list(by_task.items())))
    path_b = write_trace(tmp_path / "b.trace.jsonl", reversed_order,
                         name="t")
    assert path_a.read_bytes() == path_b.read_bytes()

    header, events = read_trace(path_a)
    assert header == {"format": "repro-trace", "version": 1, "name": "t"}
    assert [(e["task_key"], e["seq"]) for e in events] == [
        ("a/task", 0), ("a/task", 1), ("a/task", 2),
        ("b/task", 0), ("b/task", 1)]
    # Canonical JSON: sorted keys, no whitespace.
    line = path_a.read_text().splitlines()[1]
    assert json.dumps(json.loads(line), sort_keys=True,
                      separators=(",", ":")) == line


def test_write_trace_replaces_atomically(tmp_path):
    path = tmp_path / "x.trace.jsonl"
    write_trace(path, {"t": _events(1)})
    write_trace(path, {"t": _events(2)})
    _, events = read_trace(path)
    assert len(events) == 2
    assert not path.with_suffix(path.suffix + ".tmp").exists()


def test_read_trace_rejects_non_trace_files(tmp_path):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text('{"format":"something-else"}\n')
    with pytest.raises(ValueError, match="not a trace sidecar"):
        read_trace(bogus)
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="not a trace sidecar"):
        read_trace(empty)
