"""ScenarioFuzzer tests: deterministic case generation, the campaign
round trip, budget handling, and the acceptance demonstration — a
deliberately planted runner bug is caught by the fuzz suite and replays
from its archived repro artifact."""

from __future__ import annotations

import json

import pytest

from repro.campaign.spec import ExperimentSpec
from repro.campaign.tasks import execute_spec
from repro.obs.clock import FakeClock
from repro.obs.metrics import MetricsRegistry
from repro.verify.fuzzer import (
    CASE_KINDS,
    REPRO_FORMAT,
    ScenarioFuzzer,
    replay_repro,
)

pytestmark = pytest.mark.fuzz

SEED = 7


def _fuzzer(tmp_path, **kwargs):
    kwargs.setdefault("root_seed", SEED)
    kwargs.setdefault("presets", ("mini3",))
    kwargs.setdefault("metrics", MetricsRegistry())
    return ScenarioFuzzer(repro_dir=tmp_path / "failures", **kwargs)


# --- case generation ----------------------------------------------------------


def test_case_specs_are_deterministic(tmp_path):
    a = _fuzzer(tmp_path)
    b = _fuzzer(tmp_path)
    for index in range(8):
        assert a.case_spec(index).task_key() == \
            b.case_spec(index).task_key()


def test_case_kinds_rotate_round_robin(tmp_path):
    fuzzer = _fuzzer(tmp_path)
    kinds = [fuzzer.case_spec(k).params_dict["case"] for k in range(8)]
    assert tuple(kinds[:4]) == CASE_KINDS
    assert kinds[:4] == kinds[4:]


def test_runner_options_are_embedded_in_the_spec(tmp_path):
    fuzzer = _fuzzer(tmp_path,
                     runner_options={"legacy_default_horizon": True})
    spec = fuzzer.case_spec(0)  # index 0 is a scenario case
    assert spec.params_dict["case"] == "scenario"
    assert spec.params_dict["legacy_default_horizon"] is True


def test_cases_execute_through_the_campaign_registry(tmp_path):
    spec = _fuzzer(tmp_path).case_spec(3)  # relabel: cheapest kind
    output = execute_spec(spec)
    assert output.stats["case"] == "relabel"
    assert output.stats["failed"] == 0
    assert len(output.records) == output.stats["checks"] > 0


def test_unknown_case_kind_rejected(tmp_path):
    spec = ExperimentSpec.make("verify_case", "mini3", SEED,
                               case="bogus", index=0, t0=0)
    with pytest.raises(ValueError, match="unknown verify case"):
        execute_spec(spec)


# --- run loop -----------------------------------------------------------------


def test_budget_is_enforced_via_injected_clock(tmp_path):
    clock = FakeClock()
    fuzzer = _fuzzer(tmp_path)
    results = fuzzer.run(max_cases=10, budget_s=0.0, clock=clock)
    assert results == []
    assert fuzzer.metrics.counter("verify.fuzz.cases") == 0


def test_clean_run_archives_nothing(tmp_path):
    fuzzer = _fuzzer(tmp_path)
    results = fuzzer.run(max_cases=4)
    assert results and all(r.passed for r in results)
    assert fuzzer.metrics.counter("verify.fuzz.cases") == 4
    assert fuzzer.metrics.counter("verify.fuzz.failures") == 0
    assert not fuzzer.repro_dir.exists()


# --- the acceptance demonstration ---------------------------------------------


def _first_failing_run(tmp_path, max_cases=8):
    """Fuzz against a runner with the pre-PR-1 horizon double offset
    planted behind its test-only flag."""
    fuzzer = _fuzzer(tmp_path,
                     runner_options={"legacy_default_horizon": True},
                     presets=("mini3", "wing-b2"))
    results = fuzzer.run(max_cases=max_cases, stop_on_failure=True)
    return fuzzer, results


def test_fuzzer_catches_planted_horizon_bug(tmp_path):
    fuzzer, results = _first_failing_run(tmp_path)
    failures = [r for r in results if not r.passed]
    assert failures, "planted bug escaped the fuzz suite"
    # The double offset surfaces exactly where it should: the
    # default-horizon oracle (and the time-shift relation built on it).
    assert {f.check for f in failures} <= {"oracle.default_horizon",
                                           "relation.time_shift"}
    assert fuzzer.metrics.counter("verify.fuzz.failures") >= 1


def test_planted_bug_failure_replays_from_repro_artifact(tmp_path):
    fuzzer, results = _first_failing_run(tmp_path)
    artifacts = sorted(fuzzer.repro_dir.glob("repro-*.json"))
    assert artifacts, "no repro artifact written for the failure"
    data = json.loads(artifacts[0].read_text(encoding="utf-8"))
    assert data["format"] == REPRO_FORMAT
    assert data["failures"]

    # The artifact is self-contained: replay re-derives the testbed,
    # scenario and (planted) runner options from the spec alone and the
    # same checks fail again.
    spec, replayed = replay_repro(artifacts[0])
    assert spec.task_key() == data["task_key"]
    replayed_failures = {(r.check, r.subject)
                         for r in replayed if not r.passed}
    original_failures = {(f["check"], f["subject"])
                         for f in data["failures"]}
    assert replayed_failures == original_failures


def test_replay_rejects_foreign_json(tmp_path):
    path = tmp_path / "not-a-repro.json"
    path.write_text(json.dumps({"format": "something-else"}),
                    encoding="utf-8")
    with pytest.raises(ValueError, match="not a verify-repro"):
        replay_repro(path)
