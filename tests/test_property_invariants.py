"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import empirical_cdf
from repro.hybrid.reorder import ReorderBuffer
from repro.hybrid.schedulers import (
    RoundRobinScheduler,
    fluid_goodput_bps,
)
from repro.plc import mac, phy
from repro.plc.spec import HPAV
from repro.sim.clock import tone_map_slot_at
from repro.sim.engine import Simulator
from repro.traffic.packet import Packet

pytestmark = pytest.mark.slow


# --- simulation kernel -------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_engine_delivers_all_events_in_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == sorted(times)
    assert len(fired) == len(times)


@given(st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
       st.integers(min_value=1, max_value=12))
def test_slot_index_always_valid(t, num_slots):
    slot = tone_map_slot_at(t, num_slots)
    assert 0 <= slot < num_slots


# --- PHY ---------------------------------------------------------------------


@given(st.lists(st.floats(min_value=-30, max_value=60, allow_nan=False),
                min_size=1, max_size=200))
def test_bit_loading_monotone_under_snr_improvement(snrs):
    snr = np.asarray(snrs)
    bits_low = phy.select_bits(snr)
    bits_high = phy.select_bits(snr + 3.0)
    assert (bits_high >= bits_low).all()


@given(st.floats(min_value=1e-3, max_value=1e5, allow_nan=False),
       st.floats(min_value=0.01, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=1e-6, max_value=1e-3))
def test_ble_definition_nonnegative_and_linear(bits, rate, pberr, tsym):
    ble = phy.ble_bps(bits, rate, pberr, tsym)
    assert ble >= 0.0
    assert np.isclose(phy.ble_bps(2 * bits, rate, pberr, tsym), 2 * ble,
                      rtol=1e-12)


# --- MAC ----------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=20),
       st.floats(min_value=0.0, max_value=0.9))
def test_expected_transmissions_at_least_one_and_monotone_in_pbs(n, p):
    etx_n = mac.expected_transmissions(n, p)
    etx_n1 = mac.expected_transmissions(n + 1, p)
    assert etx_n >= 1.0
    assert etx_n1 >= etx_n  # more PBs can only need more attempts


@given(st.floats(min_value=0.0, max_value=0.85),
       st.floats(min_value=0.0, max_value=0.1))
def test_expected_transmissions_monotone_in_pb_err(p, dp):
    assert (mac.expected_transmissions(3, p + dp)
            >= mac.expected_transmissions(3, p))


@given(st.integers(min_value=1, max_value=65000))
def test_pb_segmentation_covers_payload(payload):
    n = mac.pbs_for_payload(payload, HPAV)
    assert n * HPAV.pb_payload_bytes >= payload
    assert (n - 1) * HPAV.pb_payload_bytes < payload


@given(st.integers(min_value=1, max_value=200),
       st.floats(min_value=1e6, max_value=2e8),
       st.floats(min_value=0.0, max_value=0.5))
def test_frame_duration_bounded(n_pbs, ble, pb_err):
    d = mac.frame_duration_s(n_pbs, ble, pb_err, HPAV)
    assert (HPAV.symbol_duration_s
            <= d
            <= HPAV.max_frame_duration_s
            + mac.DEFAULT_TIMINGS.preamble_fc_s + 1e-12)


# --- reorder buffer -------------------------------------------------------------


@given(st.permutations(list(range(12))))
def test_reorder_buffer_releases_in_order_within_window(perm):
    buf = ReorderBuffer(hole_timeout_s=100.0, max_window=64)
    released = []
    for k, seq in enumerate(perm):
        released += [p.seq for p in
                     buf.push(Packet(seq=seq, created_at=0.0),
                              now=0.001 * k)]
    assert released == sorted(released)
    assert released == list(range(12))  # nothing lost, window never flushed


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                max_size=60))
def test_reorder_buffer_never_regresses(seqs):
    buf = ReorderBuffer(hole_timeout_s=0.01, max_window=8)
    released = []
    for k, seq in enumerate(seqs):
        released += [p.seq for p in
                     buf.push(Packet(seq=seq, created_at=0.0),
                              now=0.005 * k)]
    assert released == sorted(released)
    assert len(released) == len(set(released))  # no duplicates


# --- schedulers ---------------------------------------------------------------------


@given(st.dictionaries(st.sampled_from(["plc", "wifi", "moca"]),
                       st.floats(min_value=1e5, max_value=1e9),
                       min_size=1, max_size=3),
       st.integers(min_value=0, max_value=500))
def test_round_robin_split_conserves_packets(caps, n):
    split = RoundRobinScheduler().split(caps, n)
    assert sum(split.values()) == n
    assert max(split.values()) - min(split.values()) <= 1


@given(st.floats(min_value=1e6, max_value=1e8),
       st.floats(min_value=1e6, max_value=1e8))
def test_fluid_goodput_bounded_by_sum(c1, c2):
    caps = {"plc": c1, "wifi": c2}
    total = c1 + c2
    proportional = fluid_goodput_bps(
        {"plc": c1 / total, "wifi": c2 / total}, caps)
    rr = fluid_goodput_bps({"plc": 0.5, "wifi": 0.5}, caps)
    assert proportional <= total * (1 + 1e-9)
    assert rr <= proportional * (1 + 1e-9)  # capacity awareness never loses


# --- analysis -----------------------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=100))
def test_cdf_monotone_and_bounded(samples):
    grid = np.linspace(-1e6, 1e6, 31)
    cdf = empirical_cdf(samples, grid)
    assert (np.diff(cdf) >= 0).all()
    assert 0.0 <= cdf[0] and cdf[-1] <= 1.0
