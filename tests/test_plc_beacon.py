"""Beacon-period schedule (§2.2, Fig. 1 structure)."""

import pytest

from repro.plc.beacon import (
    BEACON_AIRTIME_S,
    BeaconSchedule,
    Region,
)
from repro.plc.tdma import TdmaScheduler
from repro.units import BEACON_PERIOD


def test_region_validation():
    with pytest.raises(ValueError):
        Region("party", 0.0, 1e-3)
    with pytest.raises(ValueError):
        Region("csma", 0.0, 0.0)
    with pytest.raises(ValueError):
        Region("csma", BEACON_PERIOD, 1e-3)


def test_beacon_period_is_two_mains_cycles():
    assert BeaconSchedule.csma_only().spans_mains_cycles() == 2.0


def test_csma_only_schedule_tiles_the_period():
    schedule = BeaconSchedule.csma_only()
    schedule.validate()
    assert schedule.cfp_fraction() == 0.0
    assert schedule.csma_fraction() == pytest.approx(
        1.0 - BEACON_AIRTIME_S / BEACON_PERIOD)


def test_schedule_with_tdma_allocations():
    allocations = TdmaScheduler(
        schedulable_fraction=0.5).allocate({"a": 10e6, "b": 10e6})
    schedule = BeaconSchedule.with_allocations(allocations)
    schedule.validate()
    assert schedule.cfp_fraction() == pytest.approx(0.5, abs=0.05)
    assert 0.4 < schedule.csma_fraction() < 0.6


def test_region_at_walks_the_period():
    schedule = BeaconSchedule.csma_only()
    assert schedule.region_at(0.0).kind == "beacon"
    assert schedule.region_at(BEACON_AIRTIME_S + 1e-6).kind == "csma"
    # Periodic: the same offset two periods later.
    assert schedule.region_at(2 * BEACON_PERIOD).kind == "beacon"


def test_validate_rejects_gaps():
    broken = BeaconSchedule(regions=[
        Region("beacon", 0.0, 1e-3),
        Region("csma", 2e-3, BEACON_PERIOD - 2e-3),  # 1 ms gap
    ])
    with pytest.raises(ValueError, match="gap"):
        broken.validate()


def test_overfull_allocations_rejected():
    scheduler = TdmaScheduler(schedulable_fraction=1.0)
    allocations = scheduler.allocate({"a": 1e6})
    # Force an allocation that cannot fit after the beacon airtime.
    with pytest.raises(ValueError):
        BeaconSchedule.with_allocations(allocations + allocations)
