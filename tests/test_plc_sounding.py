"""The §2.1 sounding/tone-map handshake."""

import pytest

from repro.plc.sounding import (
    SounderState,
    SoundingExchange,
    establish,
)


@pytest.fixture()
def exchange(testbed):
    est = testbed.networks["B1"].estimator("0", "1")
    est.reset()
    return SoundingExchange(est)


def test_starts_in_default_robo(exchange, t_work):
    assert exchange.state is SounderState.DEFAULT_ROBO
    assert exchange.tone_map is None
    assert exchange.want_to_send(t_work) is SounderState.DEFAULT_ROBO


def test_handshake_adapts_after_enough_sounds(exchange, t_work):
    tone_map = establish(exchange, t_work)
    assert exchange.state is SounderState.ADAPTED
    assert tone_map.tmi == 1
    assert tone_map.avg_ble_bps() > 0
    assert any("adapted" in h for h in exchange.history)


def test_adapted_links_refuse_to_sound(exchange, t_work):
    establish(exchange, t_work)
    with pytest.raises(RuntimeError):
        exchange.next_sound(t_work + 1.0)


def test_expiry_forces_resounding(exchange, t_work):
    establish(exchange, t_work)
    expired_at = t_work + exchange.spec.tone_map_expiry_s + 1.0
    assert exchange.want_to_send(expired_at) is SounderState.DEFAULT_ROBO
    assert exchange.tone_map is None
    # And a fresh handshake gets a new TMI.
    tone_map = establish(exchange, expired_at)
    assert tone_map.tmi == 2


def test_error_monitor_invalidates(exchange, t_work):
    establish(exchange, t_work)
    exchange.on_data(t_work + 5.0, n_pbs=10, errored=True)
    assert exchange.state is SounderState.DEFAULT_ROBO
    assert any("errors" in h for h in exchange.history)


def test_clean_data_keeps_the_tone_map(exchange, t_work):
    establish(exchange, t_work)
    for k in range(5):
        exchange.on_data(t_work + k, n_pbs=40, errored=False)
    assert exchange.state is SounderState.ADAPTED


def test_destination_needs_multiple_sounds(exchange, t_work):
    frame = exchange.next_sound(t_work)
    exchange.on_sound(frame)
    assert exchange.destination_response(t_work) is None  # 1 of 3


def test_sounding_improves_the_estimate(exchange, t_work):
    """Each handshake feeds PBs through the estimator: margins shrink."""
    before = exchange.estimator.margin_db
    establish(exchange, t_work)
    assert exchange.estimator.margin_db < before
