"""Electrical-load facade: noise propagation, taps, caching."""

import numpy as np
import pytest

from repro.powergrid.activity import OfficeActivityModel
from repro.powergrid.appliances import ApplianceInstance
from repro.powergrid.load import (
    BACKGROUND_NOISE_DBM_HZ,
    ElectricalLoad,
    dbm_to_mw,
    mw_to_dbm,
)
from repro.powergrid.topology import GridTopology, Outlet
from repro.sim.clock import MainsClock
from repro.sim.random import RandomStreams


def _grid_with_two_rooms():
    g = GridTopology()
    g.add_outlet(Outlet("board", (0, 0), "B", is_board=True))
    g.add_outlet(Outlet("j0", (5, 0), "B"))
    g.add_outlet(Outlet("j1", (30, 0), "B"))
    g.add_outlet(Outlet("near", (5, 2), "B"))
    g.add_outlet(Outlet("far", (30, 2), "B"))
    g.add_cable("board", "j0", 5.0)
    g.add_cable("j0", "j1", 25.0)
    g.add_cable("j0", "near", 2.0)
    g.add_cable("j1", "far", 2.0)
    return g


@pytest.fixture()
def load():
    g = _grid_with_two_rooms()
    apps = [ApplianceInstance.make("fridge-near", "fridge", "near"),
            ApplianceInstance.make("lab-near", "lab_equipment", "near")]
    return ElectricalLoad(g, apps, OfficeActivityModel(RandomStreams(2)))


def test_unknown_appliance_outlet_rejected():
    g = _grid_with_two_rooms()
    bad = [ApplianceInstance.make("x", "fridge", "nonexistent")]
    with pytest.raises(KeyError):
        ElectricalLoad(g, bad, OfficeActivityModel(RandomStreams(2)))


def test_noise_is_local(load):
    """Noise near the appliance must exceed noise a room away (§5)."""
    t = MainsClock.at(day=1, hour=12)
    near = load.noise_psd_at("near", t)
    far = load.noise_psd_at("far", t)
    assert near.mean() > far.mean() + 10.0


def test_noise_never_below_background(load):
    t = MainsClock.at(day=1, hour=12)
    for outlet in ("near", "far", "board"):
        noise = load.noise_psd_at(outlet, t)
        assert (noise >= BACKGROUND_NOISE_DBM_HZ - 1e-9).all()


def test_noise_has_slot_structure(load):
    """Lab equipment has a mains-synchronous profile → slots differ."""
    t = MainsClock.at(day=1, hour=12)
    noise = load.noise_psd_at("near", t)
    assert noise.max() - noise.min() > 0.5


def test_unknown_outlet_raises(load):
    with pytest.raises(KeyError):
        load.noise_psd_at("missing", 0.0)


def test_cable_distance_caches_and_matches_grid(load):
    d1 = load.cable_distance("near", "far")
    d2 = load.cable_distance("far", "near")
    assert d1 == d2 == 29.0


def test_reflection_taps_geometry_is_static(load):
    t = MainsClock.at(day=1, hour=12)
    taps_a = load.reflection_taps("near", "far", t)
    taps_b = load.reflection_taps("near", "far", t + 3600)
    assert [(a.instance_id, e) for a, e, _ in taps_a] == \
        [(a.instance_id, e) for a, e, _ in taps_b]


def test_reflection_taps_report_on_state(load):
    t = MainsClock.at(day=1, hour=12)
    taps = load.reflection_taps("near", "far", t)
    by_id = {a.instance_id: on for a, _, on in taps}
    assert by_id["fridge-near"]       # always on
    assert by_id["lab-near"]          # always on


def test_impulsive_rate_positive_near_impulsive_appliance(load):
    t = MainsClock.at(day=1, hour=12)
    assert load.impulsive_event_rate_at("near", t) > 0
    assert (load.impulsive_event_rate_at("near", t)
            > load.impulsive_event_rate_at("far", t))


def test_dbm_conversions_roundtrip():
    assert mw_to_dbm(dbm_to_mw(-87.5)) == pytest.approx(-87.5)
    with pytest.raises(ValueError):
        mw_to_dbm(0.0)


def test_state_signature_matches_appliance_order(load):
    t = MainsClock.at(day=1, hour=12)
    sig = load.state_signature(t)
    assert len(sig) == len(load.appliances)
    assert load.active_count(t) == sum(sig)
