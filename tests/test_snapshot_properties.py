"""Property tests: snapshot/restore is invisible to the simulation.

The snapshot plane's contract (``docs/architecture.md``): pausing a run
at *any* slice point, freezing the world through the versioned wire
format, thawing it into a freshly built twin, and continuing produces
results bit-identical to the uninterrupted run. Hypothesis sweeps the
inputs a blessed example would pin: scenario composition, world seed,
the slice point (including mid-mains-cycle fractions — the PLC capacity
model is periodic in the 20 ms mains cycle, so a misrestored phase
shows up immediately), and mid-hole reorder-buffer boundaries.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import checkout_testbed
from repro.hybrid.aggregator import HybridDevice
from repro.hybrid.reorder import ReorderBuffer
from repro.netsim.runner import ScenarioRunner
from repro.netsim.scenario import FlowRequest, Scenario
from repro.obs.metrics import MetricsRegistry
from repro.snapshot import (
    Snapshot,
    dump_snapshot,
    load_snapshot,
    restore_reorder_buffer,
    snapshot_reorder_buffer,
)
from repro.traffic.packet import Packet

pytestmark = pytest.mark.slow

PRESET = "mini3"
#: Wednesday 2 pm, the canonical measurement start.
T_BASE = 2 * 24 * 3600.0 + 14 * 3600.0
#: One 50 Hz mains cycle — slice points land *inside* it on purpose.
MAINS_CYCLE_S = 0.02

# Whole-scenario examples run a real runner twice; keep counts low.
RUNNER_SETTINGS = settings(max_examples=8)

seeds = st.integers(min_value=0, max_value=2**31 - 1)

#: Sub-quantum offsets: ``k * 0.004`` hits five distinct phases of the
#: mains cycle (0, 20%, 40%, 60%, 80%) for both the run start and the
#: pause point.
mains_phases = st.integers(0, 4).map(lambda k: k * MAINS_CYCLE_S / 5.0)


def _flow(index: int, spec) -> FlowRequest:
    kind, medium, start_off, size = spec
    src, dst = [(0, 1), (1, 2), (2, 0)][index % 3]
    name = f"f{index}-{kind}-{medium}"
    if kind == "file":
        return FlowRequest(name, src, dst, T_BASE + start_off,
                           kind="file", medium=medium,
                           size_bytes=2e6 + size * 1e6)
    if kind == "cbr":
        return FlowRequest(name, src, dst, T_BASE + start_off,
                           kind="cbr", medium=medium,
                           rate_bps=4e6 + size * 2e6,
                           duration_s=20.0 + start_off)
    return FlowRequest(name, src, dst, T_BASE + start_off,
                       kind="saturated", medium=medium,
                       duration_s=20.0 + start_off)


flow_specs = st.tuples(
    st.sampled_from(["saturated", "cbr", "file"]),
    st.sampled_from(["plc", "wifi", "hybrid"]),
    st.floats(0.0, 8.0, allow_nan=False),
    st.integers(0, 4))

scenarios = st.lists(flow_specs, min_size=1, max_size=3).map(
    lambda specs: Scenario(
        name="prop", flows=[_flow(k, s) for k, s in enumerate(specs)]))


def _run_results(runner, results):
    return {name: result.to_dict() for name, result in results.items()}


@RUNNER_SETTINGS
@given(scenario=scenarios, seed=seeds,
       slice_frac=st.floats(0.05, 0.95, allow_nan=False),
       phase=mains_phases)
def test_runner_restore_then_n_steps_matches_straight(
        scenario, seed, slice_frac, phase):
    """restore(snapshot(world)) + N quanta == N straight quanta, bit for
    bit — over random scenarios, seeds, and slice points that land at
    arbitrary mains-cycle phases and mid-quantum fractions."""
    horizon = 30.0
    until = T_BASE + slice_frac * horizon + phase

    straight = ScenarioRunner(checkout_testbed(PRESET, seed=seed),
                              metrics=MetricsRegistry())
    ref_results = straight.run(scenario, horizon_s=horizon)

    first = ScenarioRunner(checkout_testbed(PRESET, seed=seed),
                           metrics=MetricsRegistry())
    partial = first.run(scenario, horizon_s=horizon, until_s=until)
    if not first.paused:
        # The slice point fell past the scenario's natural end: the run
        # completed — it must already equal the reference.
        assert _run_results(first, partial) == \
            _run_results(straight, ref_results)
        return

    # Freeze through the wire format (the exact checkpoint path), thaw
    # into a freshly built twin of the same preset+seed.
    blob = dump_snapshot(first.snapshot(scenario, partial))
    second = ScenarioRunner(checkout_testbed(PRESET, seed=seed),
                            metrics=MetricsRegistry())
    resumed = second.resume(scenario, load_snapshot(blob))

    assert _run_results(second, resumed) == \
        _run_results(straight, ref_results)
    assert second.stats.to_dict() == straight.stats.to_dict()
    assert [vars(a) for a in second.log] == \
        [vars(b) for b in straight.log]


@RUNNER_SETTINGS
@given(seed=seeds, cut_a=st.floats(0.05, 0.45, allow_nan=False),
       cut_b=st.floats(0.5, 0.95, allow_nan=False), phase=mains_phases)
def test_runner_double_slice_matches_straight(seed, cut_a, cut_b, phase):
    """Two chained slices (the campaign's K>2 shape: resume then pause
    again) still land bit-identical."""
    from repro.netsim.scenario import build_scenario

    horizon = 30.0
    scenario = build_scenario("mini3-mixed", T_BASE)
    straight = ScenarioRunner(checkout_testbed(PRESET, seed=seed),
                              metrics=MetricsRegistry())
    ref_results = straight.run(scenario, horizon_s=horizon)

    runner = ScenarioRunner(checkout_testbed(PRESET, seed=seed),
                            metrics=MetricsRegistry())
    results = runner.run(scenario, horizon_s=horizon,
                         until_s=T_BASE + cut_a * horizon + phase)
    for until in (T_BASE + cut_b * horizon + phase, None):
        if not runner.paused:
            break
        blob = dump_snapshot(runner.snapshot(scenario, results))
        runner = ScenarioRunner(checkout_testbed(PRESET, seed=seed),
                                metrics=MetricsRegistry())
        results = runner.resume(scenario, load_snapshot(blob),
                                until_s=until)
    assert not runner.paused
    assert _run_results(runner, results) == \
        _run_results(straight, ref_results)
    assert runner.stats.to_dict() == straight.stats.to_dict()


# --- hybrid device ------------------------------------------------------------


@settings(max_examples=10)
@given(seed=seeds, mode=st.sampled_from(["hybrid", "round-robin",
                                         "plc", "wifi"]),
       slice_frac=st.floats(0.05, 0.95, allow_nan=False),
       phase=mains_phases)
def test_hybrid_device_segmented_matches_straight(seed, mode,
                                                  slice_frac, phase):
    """A saturated hybrid run paused at any quantum boundary, frozen,
    restored into a fresh device and finished matches the straight run
    sample for sample (same quantum grid, same RNG draws, same probe
    schedule)."""
    import numpy as np

    duration = 6.0
    until = T_BASE + slice_frac * duration + phase

    def device(tb):
        return HybridDevice(tb.plc_link(0, 1), tb.wifi_link(0, 1),
                            tb.streams, metrics=MetricsRegistry())

    straight = device(checkout_testbed(PRESET, seed=seed))
    reference = straight.run_saturated(mode, T_BASE, duration)

    first = device(checkout_testbed(PRESET, seed=seed))
    partial = first.run_saturated(mode, T_BASE, duration, until_s=until)
    if not first.paused:
        assert np.array_equal(partial.throughput.values,
                              reference.throughput.values)
        return
    blob = dump_snapshot(first.snapshot())
    second = device(checkout_testbed(PRESET, seed=seed))
    second.restore(load_snapshot(blob))
    resumed = second.resume_saturated()

    assert np.array_equal(resumed.throughput.times,
                          reference.throughput.times)
    assert np.array_equal(resumed.throughput.values,
                          reference.throughput.values)
    assert resumed.failovers == reference.failovers


# --- reorder buffer -----------------------------------------------------------


arrival_plans = st.integers(3, 24).flatmap(
    lambda n: st.tuples(
        st.permutations(range(n)),
        st.lists(st.floats(0.001, 0.04, allow_nan=False),
                 min_size=n, max_size=n),
        st.integers(1, n - 1)))


@given(plan=arrival_plans, timeout=st.floats(0.01, 0.1,
                                             allow_nan=False))
def test_reorder_buffer_restore_mid_stream(plan, timeout):
    """Snapshotting a reorder buffer mid-stream — including while a
    hole is open and its timeout clock is running — and restoring into
    a fresh buffer replays the remaining arrivals identically."""
    order, gaps, cut = plan
    times = []
    now = 0.0
    for gap in gaps:
        now += gap
        times.append(now)

    def fresh():
        return ReorderBuffer(hole_timeout_s=timeout, max_window=8,
                             metrics=MetricsRegistry())

    def feed(buffer, arrivals):
        released = []
        for seq, at in arrivals:
            released.extend((p.seq, p.delivered_at)
                            for p in buffer.push(Packet(seq=seq), at))
        released.extend((p.seq, p.delivered_at)
                        for p in buffer.flush(times[-1] + 1.0))
        return released

    arrivals = list(zip(order, times))
    reference = fresh()
    ref_released = feed(reference, arrivals)

    live = fresh()
    for seq, at in arrivals[:cut]:
        for p in live.push(Packet(seq=seq), at):
            pass
    blob = dump_snapshot(Snapshot(
        kind="reorder-buffer", payload=snapshot_reorder_buffer(live)))
    twin = fresh()
    restore_reorder_buffer(twin, load_snapshot(blob).payload)
    assert twin.pending_count == live.pending_count

    # Replay the prefix on a throwaway to collect its releases, then
    # compare prefix + suffix against the uninterrupted reference.
    prefix = fresh()
    early = []
    for seq, at in arrivals[:cut]:
        early.extend((p.seq, p.delivered_at)
                     for p in prefix.push(Packet(seq=seq), at))
    late = feed(twin, arrivals[cut:])
    assert early + late == ref_released
    assert twin.stats.delivered == reference.stats.delivered
    assert twin.stats.holes_flushed == reference.stats.holes_flushed
    assert twin.stats.release_times == reference.stats.release_times
