"""SoF sniffer: saturated captures, probe flows, retransmission detection."""

import numpy as np
import pytest

from repro.plc.sniffer import (
    capture_probe_flow,
    capture_saturated,
    classify_retransmissions,
)
from repro.units import HALF_MAINS_CYCLE


def test_saturated_capture_yields_back_to_back_frames(testbed, t_work):
    link = testbed.plc_link(0, 1)
    sofs = capture_saturated(link, t_work, 0.5)
    assert len(sofs) > 50
    gaps = np.diff([s.timestamp for s in sofs])
    assert (gaps > 0).all()
    assert gaps.max() < 0.02  # frames every few ms under saturation


def test_saturated_capture_carries_slot_ble(testbed, t_work):
    """Fig. 9's mechanism: the SoF advertises the BLE of its slot."""
    link = testbed.plc_link(0, 1)
    sofs = capture_saturated(link, t_work, 0.2)
    slots = {s.slot for s in sofs}
    assert slots == set(range(6))  # frame cadence sweeps the mains cycle
    per_slot = link.ble_per_slot_bps(t_work)
    for sof in sofs[:20]:
        assert sof.ble_bps == pytest.approx(per_slot[sof.slot], rel=0.2)


def test_saturated_capture_respects_max_frames(testbed, t_work):
    link = testbed.plc_link(0, 1)
    sofs = capture_saturated(link, t_work, 10.0, max_frames=17)
    assert len(sofs) == 17


def test_capture_rejects_nonpositive_duration(testbed, t_work):
    link = testbed.plc_link(0, 1)
    with pytest.raises(ValueError):
        capture_saturated(link, t_work, 0.0)


def test_probe_flow_marks_retransmissions(testbed, t_work):
    rng = np.random.default_rng(3)
    link = testbed.plc_link(11, 4)  # bad link: retransmissions guaranteed
    sofs = capture_probe_flow(link, t_work, 30.0, packet_interval_s=0.075,
                              rng=rng)
    assert any(s.is_retransmission for s in sofs)
    flags = classify_retransmissions(sofs)
    truth = [s.is_retransmission for s in sofs]
    agreement = np.mean([f == t for f, t in zip(flags, truth)])
    assert agreement > 0.95  # the 10 ms heuristic works


def test_good_link_probe_flow_rarely_retransmits(testbed, t_work):
    rng = np.random.default_rng(3)
    link = testbed.plc_link(13, 14)
    sofs = capture_probe_flow(link, t_work, 30.0, packet_interval_s=0.075,
                              rng=rng)
    retx = np.mean([s.is_retransmission for s in sofs])
    assert retx < 0.1


def test_classify_retransmissions_threshold():
    from repro.plc.frames import SofDelimiter

    def sof(t):
        return SofDelimiter(timestamp=t, src="a", dst="b", tmi=1,
                            ble_bps=1e8, slot=0, n_pbs=3, duration_s=1e-3)

    sofs = [sof(0.0), sof(0.005), sof(0.075), sof(0.150)]
    assert classify_retransmissions(sofs) == [False, True, False, False]
