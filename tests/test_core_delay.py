"""Delay metrics (§8's delay-sensitive-application motivation)."""

import numpy as np
import pytest

from repro.core.delay import (
    DelayEstimate,
    delay_budget_ok,
    estimate_delay,
    service_time_s,
)
from repro.core.interference import AirtimeReport


def test_service_time_scales_inversely_with_ble(testbed, t_work):
    fast = service_time_s(testbed.plc_link(13, 14), t_work)
    slow = service_time_s(testbed.plc_link(2, 7), t_work)
    assert 0.0005 < fast < slow < 0.02


def test_bad_links_pay_retransmission_delay(testbed, t_work):
    good = estimate_delay(testbed.plc_link(13, 14), t_work)
    bad = estimate_delay(testbed.plc_link(3, 8), t_work)
    assert good.retx_s < bad.retx_s
    assert good.total_s < bad.total_s
    assert bad.jitter_s >= good.jitter_s


def test_foreign_airtime_inflates_delay(testbed, t_work):
    link = testbed.plc_link(0, 1)
    quiet = estimate_delay(link, t_work)
    busy = estimate_delay(link, t_work,
                          airtime=AirtimeReport(1.0, 0.0, 0.6))
    assert busy.contention_s > quiet.contention_s
    assert busy.total_s > quiet.total_s


def test_overload_yields_infinite_queueing(testbed, t_work):
    link = testbed.plc_link(11, 4)  # nearly dead at working hours
    est = estimate_delay(link, t_work, offered_bps=80e6)
    assert est.queueing_s == float("inf")
    assert not delay_budget_ok(est, budget_s=1.0)


def test_validation(testbed, t_work):
    with pytest.raises(ValueError):
        estimate_delay(testbed.plc_link(0, 1), t_work, offered_bps=0.0)
    with pytest.raises(ValueError):
        delay_budget_ok(
            DelayEstimate(1e-3, 0, 0, 0, 0), budget_s=0.0)


def test_delay_budget_check(testbed, t_work):
    link = testbed.plc_link(13, 14)
    est = estimate_delay(link, t_work)
    assert delay_budget_ok(est, budget_s=0.1)
    assert not delay_budget_ok(est, budget_s=1e-6)
    # A tight jitter budget can fail even when total delay passes.
    assert not delay_budget_ok(est, budget_s=0.1,
                               jitter_budget_s=0.0) or est.jitter_s == 0.0


def test_total_decomposition_adds_up(testbed, t_work):
    est = estimate_delay(testbed.plc_link(0, 3), t_work)
    assert est.total_s == pytest.approx(
        est.service_s + est.retx_s + est.contention_s + est.queueing_s)
