"""WiFi MAC detail: A-MPDU efficiency and Minstrel rate control."""

import numpy as np
import pytest

from repro.sim.random import RandomStreams
from repro.units import MBPS
from repro.wifi.channel import WifiChannel
from repro.wifi.mac import (
    MinstrelRateControl,
    ampdu_airtime_s,
    ampdu_efficiency,
    frame_success_probability,
    run_rate_control,
)
from repro.wifi.phy import MCS_TABLE_2SS, select_mcs


def test_ampdu_airtime_validation():
    with pytest.raises(ValueError):
        ampdu_airtime_s(0.0, 1500, 4)
    with pytest.raises(ValueError):
        ampdu_airtime_s(65 * MBPS, 1500, 0)


def test_aggregation_amortises_overhead():
    """Deeper A-MPDUs → better efficiency (ref [16]'s MAC enhancement)."""
    effs = [ampdu_efficiency(130 * MBPS, n_mpdus=n) for n in (1, 4, 16, 64)]
    assert effs == sorted(effs)
    assert effs[0] < 0.35         # single-MPDU 802.11n is dreadful
    assert effs[2] > 0.6          # the flat 0.65 assumption ≈ 16-deep


def test_higher_rates_need_aggregation_more():
    """Efficiency loss from no aggregation grows with the PHY rate."""
    low = ampdu_efficiency(13 * MBPS, n_mpdus=1) / ampdu_efficiency(
        13 * MBPS, n_mpdus=16)
    high = ampdu_efficiency(130 * MBPS, n_mpdus=1) / ampdu_efficiency(
        130 * MBPS, n_mpdus=16)
    assert high < low


def test_frame_success_probability_monotone():
    entry = MCS_TABLE_2SS[12]
    probs = [frame_success_probability(snr, entry)
             for snr in (entry.min_snr_db - 6, entry.min_snr_db,
                         entry.min_snr_db + 6)]
    assert probs == sorted(probs)
    assert probs[0] < 0.05 and probs[2] > 0.95


def test_minstrel_validation():
    rng = RandomStreams(1).get("m")
    with pytest.raises(ValueError):
        MinstrelRateControl(rng, ewma_weight=0.0)
    with pytest.raises(ValueError):
        MinstrelRateControl(rng, sample_interval=1)


def test_minstrel_converges_to_near_ideal_rate():
    streams = RandomStreams(2)
    channel = WifiChannel((0, 0), (8, 0), streams, name="mc")
    rc = MinstrelRateControl(streams.get("rc"))
    rng = streams.get("frames")
    t0 = 2 * 86400 + 23 * 3600  # quiet hours: nearly static channel
    choices = run_rate_control(channel, rc, rng, t0, 8.0)
    ideal = select_mcs(channel.mean_snr_db()).index
    # Converged regime: the dominant choice sits within a couple of MCS of
    # ideal (Minstrel prefers a slightly lower rate with near-certain
    # delivery over the threshold rate at ~60 % success — by design).
    tail = choices[len(choices) // 2:]
    dominant = max(set(tail), key=tail.count)
    assert abs(dominant - ideal) <= 2
    # And the throughput leader agrees.
    assert abs(rc.best_rate() - ideal) <= 2


def test_minstrel_keeps_sampling():
    streams = RandomStreams(3)
    channel = WifiChannel((0, 0), (8, 0), streams, name="ms")
    rc = MinstrelRateControl(streams.get("rc2"), sample_interval=10)
    rng = streams.get("frames2")
    choices = run_rate_control(channel, rc, rng, 0.0, 4.0)
    assert len(set(choices)) >= 3  # probes other rates now and then


def test_minstrel_feedback_moves_ewma():
    rc = MinstrelRateControl(RandomStreams(4).get("rc3"))
    before = rc.expected_throughput_bps(15)
    for _ in range(20):
        rc.on_result(15, False)
    assert rc.expected_throughput_bps(15) < before / 4
    for _ in range(40):
        rc.on_result(15, True)
    assert rc.expected_throughput_bps(15) > before
