"""Hybrid mesh routing (§4.3 extension)."""

import pytest

from repro.core.metrics import LinkMetricRecord
from repro.hybrid.ieee1905 import AbstractionLayer
from repro.hybrid.routing import (
    HybridMeshRouter,
    ett_seconds,
    populate_from_testbed,
)


def _rec(src, dst, medium, capacity_mbps, etx=1.0):
    return LinkMetricRecord(time=0.0, src=src, dst=dst, medium=medium,
                            capacity_bps=capacity_mbps * 1e6, etx=etx)


def _toy_layer():
    """a -plc- b -wifi- c, plus a slow direct a-wifi-c."""
    layer = AbstractionLayer()
    layer.update(_rec("a", "b", "plc", 60.0))
    layer.update(_rec("b", "c", "wifi", 50.0))
    layer.update(_rec("a", "c", "wifi", 2.0))
    return layer


def test_ett_formula():
    record = _rec("a", "b", "plc", 12.0, etx=2.0)
    assert ett_seconds(record, packet_bytes=1500) == pytest.approx(
        2.0 * 1500 * 8 / 12e6)
    dead = _rec("a", "b", "plc", 0.0)
    assert ett_seconds(dead) == float("inf")


def test_router_prefers_fast_two_hop_over_slow_direct():
    router = HybridMeshRouter(_toy_layer())
    path = router.best_path("a", "c")
    assert path is not None
    assert [h.dst for h in path.hops] == ["b", "c"]
    assert path.alternates_media  # plc then wifi, as in ref [17]
    assert len(path) == 2


def test_router_returns_none_when_unreachable():
    layer = AbstractionLayer()
    layer.update(_rec("a", "b", "plc", 10.0))
    router = HybridMeshRouter(layer)
    assert router.best_path("b", "a") is None      # directed!
    assert router.best_path("a", "zzz") is None


def test_router_ignores_dead_links():
    layer = _toy_layer()
    layer.update(_rec("a", "d", "wifi", 0.5))      # below min capacity
    router = HybridMeshRouter(layer)
    assert router.best_path("a", "d") is None


def test_high_etx_shifts_route():
    layer = AbstractionLayer()
    layer.update(_rec("a", "c", "plc", 40.0, etx=6.0))   # lossy direct
    layer.update(_rec("a", "b", "wifi", 40.0, etx=1.0))
    layer.update(_rec("b", "c", "wifi", 40.0, etx=1.0))
    path = HybridMeshRouter(layer).best_path("a", "c")
    assert len(path) == 2  # relay wins despite equal capacities


def test_cross_board_pairs_reachable_through_wifi_relays(testbed, t_work):
    """The two AVLNs can still talk: WiFi hops bridge the boards (§4.3)."""
    layer = AbstractionLayer()
    populate_from_testbed(layer, testbed, t_work)
    router = HybridMeshRouter(layer)
    # 0 (board B1) to 15 (board B2): no direct PLC, air distance too far
    # for one WiFi hop — the mesh must relay.
    path = router.best_path("0", "15")
    assert path is not None
    assert len(path) >= 2
    assert any(h.medium == "wifi" for h in path.hops)


def test_full_mesh_connectivity(testbed, t_work):
    layer = AbstractionLayer()
    populate_from_testbed(layer, testbed, t_work)
    router = HybridMeshRouter(layer)
    reachable = set(router.reachable_pairs())
    all_pairs = {(str(i), str(j)) for i, j in testbed.all_pairs()}
    # Seamless connectivity: ≥95 % of ordered pairs routable.
    assert len(reachable & all_pairs) >= 0.95 * len(all_pairs)


# --- the no-path contract (chaos PR satellites) -------------------------------


def test_best_path_contract_on_empty_and_unknown_nodes():
    """No metrics at all → every query answers None, never raises."""
    router = HybridMeshRouter(AbstractionLayer())
    assert router.best_path("a", "b") is None
    assert router.reachable_pairs() == []


def test_disconnected_components_yield_none_not_error():
    """Two islands: intra-island routes exist, cross-island is None and
    absent from reachable_pairs — the caller's signal to fail over."""
    layer = AbstractionLayer()
    layer.update(_rec("a", "b", "plc", 60.0))
    layer.update(_rec("c", "d", "wifi", 50.0))
    router = HybridMeshRouter(layer)
    assert router.best_path("a", "b") is not None
    assert router.best_path("c", "d") is not None
    for src, dst in (("a", "c"), ("a", "d"), ("b", "c"), ("b", "d")):
        assert router.best_path(src, dst) is None
        assert router.best_path(dst, src) is None
    pairs = router.reachable_pairs()
    assert ("a", "b") in pairs and ("c", "d") in pairs
    assert ("a", "c") not in pairs and ("b", "d") not in pairs


def test_single_medium_graph_routes_without_alternation():
    """A PLC-only chain still routes end to end; the path simply never
    alternates media (the §4.3 relay gain needs both)."""
    layer = AbstractionLayer()
    layer.update(_rec("a", "b", "plc", 60.0))
    layer.update(_rec("b", "c", "plc", 40.0))
    router = HybridMeshRouter(layer)
    path = router.best_path("a", "c")
    assert path is not None
    assert path.media == ("plc", "plc")
    assert not path.alternates_media
    # And a node only reachable on the missing medium stays unreachable.
    assert router.best_path("c", "a") is None  # links are directed
