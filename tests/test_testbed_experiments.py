"""Measurement runners."""

import numpy as np
import pytest

from repro.testbed.experiments import (
    long_run_series,
    night_start,
    poll_ble_series,
    survey_pairs,
    working_hours_start,
)
from repro.units import HOUR, MINUTE


def test_canonical_times_land_in_expected_windows():
    from repro.sim.clock import MainsClock
    clock = MainsClock()
    assert clock.is_working_hours(working_hours_start())
    assert not clock.is_working_hours(night_start())


def test_survey_rows_carry_both_media(testbed, t_work):
    rows = survey_pairs(testbed, t_work, duration=5.0,
                        report_interval=0.5, pairs=[(0, 1), (1, 0)])
    assert len(rows) == 2
    row = rows[0]
    assert row.src == 0 and row.dst == 1
    assert row.plc_mean_mbps > 0
    assert row.air_distance_m == testbed.air_distance(0, 1)
    assert row.plc_connected and isinstance(row.wifi_connected, bool)


def test_poll_ble_series_50ms_grid(testbed, t_night):
    series = poll_ble_series(testbed, 0, 1, t_night, 2.0)
    assert len(series) == 40
    assert np.allclose(np.diff(series.times), 0.05)
    assert (series.values > 0).all()


def test_long_run_series_metrics(testbed, t_work):
    for metric in ("ble", "throughput", "pberr"):
        series = long_run_series(testbed, 0, 1, t_work, 10 * MINUTE,
                                 interval=MINUTE, metric=metric)
        assert len(series) == 10
    with pytest.raises(ValueError):
        long_run_series(testbed, 0, 1, t_work, MINUTE, metric="latency")


def test_random_scale_lower_ble_during_working_hours(testbed):
    """§6.3: higher electrical load (working hours) → lower µ."""
    day = long_run_series(testbed, 0, 3, working_hours_start(),
                          30 * MINUTE, interval=MINUTE)
    night = long_run_series(testbed, 0, 3, night_start(),
                            30 * MINUTE, interval=MINUTE)
    assert night.mean > day.mean
