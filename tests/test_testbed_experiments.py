"""Measurement runners."""

import numpy as np
import pytest

from repro.testbed.experiments import (
    long_run_series,
    night_start,
    poll_ble_series,
    survey_pairs,
    working_hours_start,
)
from repro.units import HOUR, MINUTE


def test_canonical_times_land_in_expected_windows():
    from repro.sim.clock import MainsClock
    clock = MainsClock()
    assert clock.is_working_hours(working_hours_start())
    assert not clock.is_working_hours(night_start())


def test_survey_rows_carry_both_media(testbed, t_work):
    rows = survey_pairs(testbed, t_work, duration=5.0,
                        report_interval=0.5, pairs=[(0, 1), (1, 0)])
    assert len(rows) == 2
    row = rows[0]
    assert row.src == 0 and row.dst == 1
    assert row.plc_mean_mbps > 0
    assert row.air_distance_m == testbed.air_distance(0, 1)
    assert row.plc_connected and isinstance(row.wifi_connected, bool)


def test_poll_ble_series_50ms_grid(testbed, t_night):
    series = poll_ble_series(testbed, 0, 1, t_night, 2.0)
    assert len(series) == 40
    assert np.allclose(np.diff(series.times), 0.05)
    assert (series.values > 0).all()


def test_long_run_series_metrics(testbed, t_work):
    for metric in ("ble", "throughput", "pberr"):
        series = long_run_series(testbed, 0, 1, t_work, 10 * MINUTE,
                                 interval=MINUTE, metric=metric)
        assert len(series) == 10
    with pytest.raises(ValueError):
        long_run_series(testbed, 0, 1, t_work, MINUTE, metric="latency")


def test_canonical_starts_have_no_shared_mutable_default():
    """Regression: the clock arguments used to default to a single
    ``MainsClock()`` instance created at import time and shared by every
    call — the classic mutable-default hazard. They must default to None
    and build (or receive) a clock per call."""
    import inspect

    from repro.sim.clock import MainsClock

    for fn in (working_hours_start, night_start):
        default = inspect.signature(fn).parameters["clock"].default
        assert default is None, f"{fn.__name__} shares a default clock"
    # A caller's custom clock is honoured, not silently swapped for the
    # default one.
    custom = MainsClock(num_slots=12)
    assert working_hours_start(custom) == working_hours_start()
    assert night_start(custom, day=0, hour=1.0) == night_start(
        day=0, hour=1.0)


def test_measure_pair_matches_survey_pairs(t_work):
    """The single-pair measurement and the survey loop are one code
    path; on identically seeded worlds their outputs are identical.
    (Two fresh worlds, because measured throughput draws sampling noise
    from a stream whose state advances per call.)"""
    from repro.testbed import build_testbed
    from repro.testbed.experiments import PairSurveyRow, measure_pair

    row = measure_pair(build_testbed(seed=11), 0, 1, t_work,
                       duration=5.0, report_interval=0.5)
    [via_survey] = survey_pairs(build_testbed(seed=11), t_work,
                                duration=5.0, report_interval=0.5,
                                pairs=[(0, 1)])
    assert row == via_survey
    assert row.to_dict()["plc_mean_mbps"] == row.plc_mean_mbps
    assert PairSurveyRow.from_dict(row.to_dict()) == row


def test_random_scale_lower_ble_during_working_hours(testbed):
    """§6.3: higher electrical load (working hours) → lower µ."""
    day = long_run_series(testbed, 0, 3, working_hours_start(),
                          30 * MINUTE, interval=MINUTE)
    night = long_run_series(testbed, 0, 3, night_start(),
                            30 * MINUTE, interval=MINUTE)
    assert night.mean > day.mean
