"""HomePlug GreenPhy preset (paper footnote 1)."""

import numpy as np
import pytest

from repro.plc.channel import PlcChannel
from repro.plc.link import PlcLink
from repro.plc.spec import GREENPHY, HPAV
from repro.sim.random import RandomStreams
from repro.units import MBPS


def test_greenphy_caps_modulation_at_qpsk():
    assert GREENPHY.max_modulation_bits == 2
    # Ceiling: 917 carriers x 2 bits x 16/21 / 46.52 µs ≈ 30 Mbps raw BLE.
    assert GREENPHY.max_ble_bps < 0.25 * HPAV.max_ble_bps


def test_greenphy_link_is_slow_but_works(testbed, t_work):
    site_a = testbed.sites[0].outlet_id
    site_b = testbed.sites[1].outlet_id
    streams = RandomStreams(5)
    hpav_link = PlcLink(PlcChannel(testbed.load, site_a, site_b, HPAV,
                                   streams, name="gp-h"), streams)
    gp_link = PlcLink(PlcChannel(testbed.load, site_a, site_b, GREENPHY,
                                 streams, name="gp-g"), streams)
    assert gp_link.is_connected(t_work)
    assert gp_link.avg_ble_bps(t_work) < 0.4 * hpav_link.avg_ble_bps(t_work)
    # Per-slot BLE never exceeds the QPSK ceiling.
    assert gp_link.ble_per_slot_bps(t_work).max() <= GREENPHY.max_ble_bps


def test_greenphy_robustness_on_a_bad_link(testbed, t_work):
    """Robust modulations → lower PBerr than HPAV on the same channel."""
    site_a = testbed.sites[9].outlet_id
    site_b = testbed.sites[4].outlet_id  # noisy corner
    streams = RandomStreams(5)
    hpav_link = PlcLink(PlcChannel(testbed.load, site_a, site_b, HPAV,
                                   streams, name="gpb-h"), streams)
    gp_link = PlcLink(PlcChannel(testbed.load, site_a, site_b, GREENPHY,
                                 streams, name="gpb-g"), streams)
    assert gp_link.pb_err(t_work) <= hpav_link.pb_err(t_work) + 1e-9
