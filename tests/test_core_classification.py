"""Link-quality classes (§7.3 heuristics)."""

import pytest

from repro.core.classification import (
    LinkQuality,
    QualityThresholds,
    classify_ble,
    classify_ble_mbps,
)
from repro.units import MBPS


def test_paper_thresholds():
    """Bad < 60 ≤ average < 100 ≤ good (Mbps)."""
    assert classify_ble_mbps(30.0) is LinkQuality.BAD
    assert classify_ble_mbps(59.9) is LinkQuality.BAD
    assert classify_ble_mbps(60.0) is LinkQuality.AVERAGE
    assert classify_ble_mbps(99.9) is LinkQuality.AVERAGE
    assert classify_ble_mbps(100.0) is LinkQuality.GOOD
    assert classify_ble_mbps(150.0) is LinkQuality.GOOD


def test_bps_and_mbps_agree():
    assert classify_ble(75 * MBPS) is classify_ble_mbps(75.0)


def test_negative_ble_rejected():
    with pytest.raises(ValueError):
        classify_ble(-1.0)


def test_custom_thresholds():
    th = QualityThresholds(bad_below_bps=100 * MBPS,
                           good_above_bps=300 * MBPS)
    assert classify_ble(150 * MBPS, th) is LinkQuality.AVERAGE


def test_inverted_thresholds_rejected():
    with pytest.raises(ValueError):
        QualityThresholds(bad_below_bps=200 * MBPS,
                          good_above_bps=100 * MBPS)
