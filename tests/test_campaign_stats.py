"""CampaignStats: the exact task-stats merge and honest accounting.

Two of this PR's bugfixes are pinned here: the nested per-domain merge
that the old implementation silently dropped (``domain_utilisation``
never aggregated across tasks), and the worker-utilisation clamp that
hid busy-time over-subscription instead of counting it.
"""

from __future__ import annotations

import pytest

from repro.campaign import ExperimentSpec, read_artifacts, run_campaign
from repro.campaign.stats import CampaignStats


def _task_stats(airtime, quanta, **extra):
    stats = {
        "quanta": sum(quanta.values()),
        "domain_airtime": airtime,
        "domain_quanta": quanta,
        "domain_utilisation": {d: airtime[d] / quanta[d]
                               for d in airtime},
    }
    stats.update(extra)
    return stats


# --- the weighted per-domain merge (the dropped-mapping bugfix) ---------------


def test_domain_utilisation_merges_quanta_weighted():
    """Two tasks with known utilisations: the aggregate weights by
    quanta, so a long task dominates a short one — not a naive mean."""
    stats = CampaignStats()
    stats.merge_task_stats(_task_stats({"plc": 30.0}, {"plc": 100}))
    stats.merge_task_stats(_task_stats({"plc": 270.0}, {"plc": 300}))
    # (30 + 270) / (100 + 300) = 0.75; the unweighted mean would be 0.6.
    assert stats.domain_utilisation() == {"plc": pytest.approx(0.75)}


def test_domains_missing_from_one_task_still_aggregate():
    stats = CampaignStats()
    stats.merge_task_stats(_task_stats({"plc": 50.0}, {"plc": 100}))
    stats.merge_task_stats(_task_stats(
        {"plc": 10.0, "wifi": 80.0}, {"plc": 100, "wifi": 100}))
    util = stats.domain_utilisation()
    assert util["plc"] == pytest.approx(0.3)
    assert util["wifi"] == pytest.approx(0.8)


def test_merge_skips_rates_and_maxes_watermark():
    stats = CampaignStats()
    stats.merge_task_stats({"quanta": 10, "max_domain_airtime": 0.7,
                            "cache_hit_rate": 0.99, "cache_hits": 9,
                            "cache_misses": 1})
    stats.merge_task_stats({"quanta": 30, "max_domain_airtime": 0.4,
                            "cache_hit_rate": 0.01, "cache_hits": 1,
                            "cache_misses": 9})
    runner = stats.runner
    assert runner["quanta"] == 40
    assert runner["max_domain_airtime"] == 0.7  # max, not sum
    # The stored ratios are discarded; the aggregate ratio is derived
    # from the summed counters.
    assert runner["cache_hit_rate"] == pytest.approx(0.5)


def test_merge_ignores_non_numeric_and_empty():
    stats = CampaignStats()
    stats.merge_task_stats(None)
    stats.merge_task_stats({})
    stats.merge_task_stats({"quanta": 5, "label": "text", "ok": True,
                            "nested": {"not": "weighted"}})
    assert stats.runner == {"quanta": 5}


def test_legacy_stats_without_raw_sums_reconstruct_weights():
    """Artifacts from before the raw-sum export only carry
    ``domain_utilisation``; they merge weighted by the task's quanta."""
    stats = CampaignStats()
    stats.merge_task_stats({"quanta": 100,
                            "domain_utilisation": {"plc": 0.2}})
    stats.merge_task_stats({"quanta": 300,
                            "domain_utilisation": {"plc": 0.6}})
    # (0.2*100 + 0.6*300) / 400 = 0.5
    assert stats.domain_utilisation() == {"plc": pytest.approx(0.5)}


def test_two_task_campaign_regression_matches_artifact_stats(tmp_path):
    """End-to-end: the engine's aggregate equals the exact weighted merge
    recomputed from the per-task stats it wrote to the artifact."""
    specs = [ExperimentSpec.make("scenario", "mini3", seed,
                                 scenario="mini3-mixed", horizon_s=60.0)
             for seed in (7, 8)]
    path = tmp_path / "two.jsonl"
    stats = run_campaign(specs, path, workers=0)
    _, tasks = read_artifacts(path)
    assert len(tasks) == 2 and all(t.stats for t in tasks)

    airtime, quanta = {}, {}
    for task in tasks:
        for domain, value in task.stats["domain_airtime"].items():
            airtime[domain] = airtime.get(domain, 0.0) + value
        for domain, value in task.stats["domain_quanta"].items():
            quanta[domain] = quanta.get(domain, 0) + value
    expected = {d: airtime[d] / quanta[d] for d in airtime}

    assert stats.domain_utilisation() == expected
    assert expected  # the scenario actually exercises domains
    # And a fresh merge from the artifact reproduces the same aggregate
    # (what `repro report --timeline` does).
    replay = CampaignStats()
    for task in tasks:
        replay.merge_task_stats(task.stats)
    assert replay.domain_utilisation() == stats.domain_utilisation()
    assert replay.runner["quanta"] == stats.runner["quanta"]


# --- honest worker accounting (the clamp bugfix) ------------------------------


def test_utilisation_is_unclamped_above_one():
    stats = CampaignStats(workers=2)
    stats.add_task_seconds(30.0)
    stats.set_wall_seconds(10.0)
    assert stats.utilisation() == pytest.approx(1.5)  # not min(1.0, ...)


def test_utilisation_below_one_unchanged():
    stats = CampaignStats(workers=2)
    stats.add_task_seconds(8.0)
    stats.set_wall_seconds(10.0)
    assert stats.utilisation() == pytest.approx(0.4)
    assert stats.check_accounting() is True
    assert stats.invariant_violations == 0


def test_check_accounting_counts_over_subscription():
    stats = CampaignStats(workers=1)
    stats.add_task_seconds(11.0)
    stats.set_wall_seconds(10.0)
    assert stats.check_accounting() is False
    assert stats.invariant_violations == 1
    assert stats.to_dict()["invariant_violations"] == 1
    assert stats.to_dict()["worker_utilisation"] == pytest.approx(1.1)


def test_check_accounting_tolerates_float_noise():
    stats = CampaignStats(workers=4)
    stats.set_wall_seconds(10.0)
    stats.add_task_seconds(40.0 * (1.0 + 1e-12))
    assert stats.check_accounting() is True
    assert stats.invariant_violations == 0
