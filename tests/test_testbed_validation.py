"""Calibration report against the paper's shapes."""

from repro.testbed.validation import CalibrationCheck, calibrate


def test_default_testbed_is_calibrated(testbed, t_work):
    report = calibrate(testbed, t_work)
    assert report.passed, f"out-of-band shapes: {report.failures()}"
    names = {c.name for c in report.checks}
    assert "BLE/T slope" in names
    assert len(report.as_rows()) == len(report.checks)


def test_check_banding():
    good = CalibrationCheck("x", "1", measured=1.0, lo=0.5, hi=1.5)
    bad = CalibrationCheck("x", "1", measured=2.0, lo=0.5, hi=1.5)
    assert good.ok and not bad.ok


def test_report_surfaces_failures(testbed, t_work):
    report = calibrate(testbed, t_work)
    assert report.failures() == []
