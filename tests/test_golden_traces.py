"""Golden-trace regression suite for the whole metric pipeline.

Each test freezes a seed, runs one slice of the pipeline (BLE polling,
tone-map evolution, the §4.1 survey, the fluid scenario runner) and
compares the numeric output against a committed reference under
``tests/golden/``. Any silent drift in the channel model, metric maths or
runner accounting fails here first. After an *intentional* change, refresh
with ``pytest --update-golden`` and review the diff like code.
"""

from __future__ import annotations

import pytest

from repro.campaign.spec import ExperimentSpec
from repro.campaign.tasks import execute_spec
from repro.sim.clock import MainsClock
from repro.testbed import build_preset_testbed
from repro.testbed.experiments import (
    measure_pair,
    night_start,
    poll_ble_series,
    working_hours_start,
)

pytestmark = pytest.mark.slow

SEED = 7
#: A spread of pairs: good short links, the kitchen-adjacent bad ones,
#: and one B2 pair.
SURVEY_PAIRS = ((0, 1), (1, 0), (0, 3), (6, 5), (11, 4), (13, 16))


@pytest.fixture(scope="module")
def world():
    """A fresh frozen-seed testbed (module-local: golden inputs must not
    depend on what other test modules did to the session testbed)."""
    return build_preset_testbed("office", seed=SEED)


def test_golden_ble_series(world, golden):
    series = poll_ble_series(world, 0, 1, night_start(), duration=2.0)
    golden("ble_series.json", {
        "src": 0, "dst": 1, "seed": SEED,
        "times": [float(t) for t in series.times],
        "ble_bps": [float(v) for v in series.values]})


def test_golden_tonemap_evolution(world, golden):
    """Per-slot BLE of one link sampled across an hour — the tone-map
    adaptation trajectory (§6.1)."""
    link = world.plc_link(0, 1)
    t0 = working_hours_start()
    samples = []
    for minutes in (0, 1, 5, 15, 30, 60):
        t = t0 + 60.0 * minutes
        samples.append({
            "t_minutes": minutes,
            "slot": MainsClock().slot(t),
            "ble_per_slot_bps": [float(v)
                                 for v in link.ble_per_slot_bps(t)],
            "pb_err": float(link.pb_err(t))})
    golden("tonemap_evolution.json",
           {"src": 0, "dst": 1, "seed": SEED, "samples": samples})


def test_golden_survey_csv(world, golden):
    rows = [measure_pair(world, i, j, working_hours_start(),
                         duration=5.0, report_interval=0.5).to_dict()
            for i, j in SURVEY_PAIRS]
    golden("survey.csv", rows)


def test_golden_runner_flows(golden):
    """The fluid runner's flow results and deterministic stats for the
    office-afternoon scenario, via the campaign task boundary."""
    spec = ExperimentSpec.make("scenario", "office", SEED,
                               scenario="office-afternoon", day=2,
                               hour=14.0, horizon_s=240.0)
    out = execute_spec(spec)
    stats = {k: v for k, v in out.stats.items()
             if k in ("quanta", "starved_quanta", "invariant_violations",
                      "max_domain_airtime")}
    golden("runner_flows.json",
           {"spec": spec.to_dict(), "task_seed": spec.task_seed(),
            "records": out.records, "stats": stats})
