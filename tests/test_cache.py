"""Shared windowed LRU cache."""

import pytest

from repro.cache import CacheStats, WindowedLruCache


def test_constructor_validation():
    with pytest.raises(ValueError):
        WindowedLruCache(window_s=0.0)
    with pytest.raises(ValueError):
        WindowedLruCache(window_s=1.0, max_entries=0)


def test_same_window_hits_different_window_misses():
    cache = WindowedLruCache(window_s=0.1)
    calls = []

    def compute(t):
        calls.append(t)
        return t

    assert cache.get("k", 0.01, lambda: compute(0.01)) == 0.01
    # Any t in [0.0, 0.1) hits the stored value.
    assert cache.get("k", 0.09, lambda: compute(0.09)) == 0.01
    assert cache.get("k", 0.11, lambda: compute(0.11)) == 0.11
    assert calls == [0.01, 0.11]
    assert cache.stats.hits == 1
    assert cache.stats.misses == 2
    assert cache.stats.hit_rate == pytest.approx(1 / 3)


def test_distinct_keys_do_not_collide():
    cache = WindowedLruCache(window_s=1.0)
    assert cache.get("a", 0.5, lambda: "A") == "A"
    assert cache.get("b", 0.5, lambda: "B") == "B"
    assert cache.get("a", 0.5, lambda: "wrong") == "A"


def test_window_index_floors_negative_times():
    cache = WindowedLruCache(window_s=1.0)
    assert cache.window_index(-0.5) == -1
    assert cache.window_index(0.5) == 0


def test_lru_eviction_keeps_recently_used_entries():
    """Overflow drops the *least recently used* entry — never the hot
    window wholesale (the old clear-everything behaviour)."""
    cache = WindowedLruCache(window_s=1.0, max_entries=3)
    for key in ("a", "b", "c"):
        cache.get(key, 0.0, lambda k=key: k)
    cache.get("a", 0.0, lambda: "wrong")     # refresh 'a' → LRU is 'b'
    cache.get("d", 0.0, lambda: "d")         # overflow evicts 'b' only
    assert cache.stats.evictions == 1
    assert cache.contains("a", 0.0)
    assert cache.contains("c", 0.0)
    assert cache.contains("d", 0.0)
    assert not cache.contains("b", 0.0)
    assert len(cache) == 3


def test_hot_window_survives_a_scan_of_cold_windows():
    """A long scan over many time windows must not dislodge the entry the
    current window keeps re-reading."""
    cache = WindowedLruCache(window_s=0.1, max_entries=8)
    t_hot = 0.05
    cache.get("hot", t_hot, lambda: "hot-value")
    for k in range(50):  # 50 cold windows, interleaved with hot re-reads
        cache.get("cold", 1.0 + 0.1 * k, lambda: k)
        assert cache.get("hot", t_hot, lambda: "wrong") == "hot-value"
    assert cache.stats.evictions > 0
    assert cache.contains("hot", t_hot)


def test_stats_reset_and_clear():
    cache = WindowedLruCache(window_s=1.0)
    cache.get("a", 0.0, lambda: 1)
    cache.get("a", 0.0, lambda: 1)
    assert cache.stats.lookups == 2
    cache.stats.reset()
    assert cache.stats == CacheStats()
    cache.clear()
    assert len(cache) == 0
    cache.get("a", 0.0, lambda: 2)
    assert cache.get("a", 0.5, lambda: "wrong") == 2
