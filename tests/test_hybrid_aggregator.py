"""Hybrid device: capacity estimation and bandwidth aggregation (Fig. 20)."""

import numpy as np
import pytest

from repro.hybrid import HybridDevice


@pytest.fixture()
def device(testbed):
    return HybridDevice(testbed.plc_link(0, 1), testbed.wifi_link(0, 1),
                        testbed.streams)


def test_capacity_estimates_track_actuals(device, t_work):
    est = device.estimate_capacities_bps(t_work)
    actual = device._actual_capacities_bps(t_work)
    for medium in ("plc", "wifi"):
        assert est[medium] == pytest.approx(actual[medium], rel=0.35)


def test_hybrid_beats_both_single_mediums(device, t_work):
    results = {m: device.run_saturated(m, t_work, 30.0).mean_mbps
               for m in ("wifi", "plc", "hybrid")}
    assert results["hybrid"] > results["wifi"]
    assert results["hybrid"] > results["plc"]


def test_hybrid_approaches_sum_of_capacities(device, t_work):
    """§7.4: 'very close to the sum of the capacities of both mediums'."""
    results = {m: device.run_saturated(m, t_work, 30.0).mean_mbps
               for m in ("wifi", "plc", "hybrid")}
    total = results["wifi"] + results["plc"]
    assert results["hybrid"] > 0.8 * total


def test_round_robin_bottlenecked_by_slowest(testbed, t_work):
    """§7.4: round-robin ≈ 2 × min capacity when media are imbalanced."""
    # Find a strongly imbalanced pair: decent PLC, weak WiFi (like the
    # paper's link 0-4, where WiFi is the bottleneck medium). WiFi varies
    # fast, so judge by short-window means.
    def mean_thr(link):
        return float(np.mean([link.throughput_bps(t_work + k * 0.4)
                              for k in range(10)]))

    best = None
    for i, j in testbed.same_board_pairs():
        plc = mean_thr(testbed.plc_link(i, j))
        wifi = mean_thr(testbed.wifi_link(i, j))
        if plc > 4.0 * wifi > 4e6:
            best = (i, j)
            break
    assert best is not None
    device = HybridDevice(testbed.plc_link(*best), testbed.wifi_link(*best),
                          testbed.streams)
    rr = device.run_saturated("round-robin", t_work, 30.0).mean_mbps
    hybrid = device.run_saturated("hybrid", t_work, 30.0).mean_mbps
    wifi = device.run_saturated("wifi", t_work, 30.0).mean_mbps
    assert rr < 3.5 * wifi          # pinned near 2 × the weak medium
    assert hybrid > 1.4 * rr        # capacity awareness pays


def test_unknown_mode_rejected(device, t_work):
    with pytest.raises(ValueError):
        device.run_saturated("bonding", t_work, 1.0)


def test_packet_level_reordering_jitter_bounded(device, t_work):
    """§7.4: reordering must not blow up jitter vs a single interface."""
    stats = device.run_packet_level("hybrid", t_work, 2.0)
    assert stats.delivered > 100
    # Mean inter-release at the bonded rate is well under a millisecond;
    # jitter should stay in the same order of magnitude.
    assert stats.jitter_s() < 5e-3
