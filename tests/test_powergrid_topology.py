"""Wiring topology: distances, paths, taps."""

import pytest

from repro.powergrid.topology import GridTopology, Outlet


def _toy_grid():
    """Board - j0 - j1 bus with one outlet per junction and a stub branch."""
    g = GridTopology()
    g.add_outlet(Outlet("board", (0, 0), "board", is_board=True))
    g.add_outlet(Outlet("j0", (5, 0), "board"))
    g.add_outlet(Outlet("j1", (10, 0), "board"))
    g.add_outlet(Outlet("o0", (5, 2), "board"))
    g.add_outlet(Outlet("o1", (10, 2), "board"))
    g.add_outlet(Outlet("stub", (7, 3), "board"))
    g.add_cable("board", "j0", 5.0)
    g.add_cable("j0", "j1", 5.0)
    g.add_cable("j0", "o0", 2.0)
    g.add_cable("j1", "o1", 2.0)
    g.add_cable("j0", "stub", 3.0)
    return g


def test_duplicate_outlet_rejected():
    g = GridTopology()
    g.add_outlet(Outlet("a", (0, 0), "b"))
    with pytest.raises(ValueError):
        g.add_outlet(Outlet("a", (1, 1), "b"))


def test_cable_validation():
    g = _toy_grid()
    with pytest.raises(ValueError):
        g.add_cable("j0", "j1", 0.0)
    with pytest.raises(KeyError):
        g.add_cable("j0", "missing", 3.0)


def test_electrical_distance_follows_cables():
    g = _toy_grid()
    assert g.electrical_distance("o0", "o1") == 2.0 + 5.0 + 2.0
    assert g.electrical_distance("board", "o1") == 5.0 + 5.0 + 2.0


def test_signal_path_sequence():
    g = _toy_grid()
    assert g.signal_path("o0", "o1") == ["o0", "j0", "j1", "o1"]


def test_tap_branches_finds_off_path_stubs():
    g = _toy_grid()
    branches = g.tap_branches("o0", "o1")
    ends = {b.end_outlet: b for b in branches}
    assert "stub" in ends
    assert ends["stub"].branch_length == 3.0
    assert ends["stub"].junction == "j0"
    # The board hangs off j0 too.
    assert "board" in ends


def test_tap_branches_respects_max_length():
    g = _toy_grid()
    branches = g.tap_branches("o0", "o1", max_branch_length=2.5)
    ends = {b.end_outlet for b in branches}
    assert "stub" not in ends


def test_degree_counts_junction_order():
    g = _toy_grid()
    assert g.degree("j0") == 4
    assert g.degree("o0") == 1


def test_distance_along_path_is_cumulative():
    g = _toy_grid()
    path = g.signal_path("o0", "o1")
    dist = g.distance_along_path(path)
    assert dist == [0.0, 2.0, 7.0, 9.0]


def test_office_floor_builder_produces_two_connected_boards():
    g = GridTopology.office_floor({"B1": (10.0, 5.0), "B2": (60.0, 30.0)})
    assert len(g.boards()) == 2
    assert g.connected("B1", "B2")
    # Cross-board distance dominated by the basement tie.
    assert g.electrical_distance("B1", "B2") >= 200.0
