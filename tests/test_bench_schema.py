"""The canonical BENCH schema: round-trip, versioning, trajectory."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.schema import (
    BENCH_FORMAT,
    BENCH_SCHEMA_VERSION,
    BenchDocument,
    BenchResult,
    Environment,
    SchemaVersionError,
    append_trajectory,
    dump_document,
    find_document,
    load_document,
    read_document,
    read_trajectory,
    trajectory_line,
    write_document,
)

# --- strategies ---------------------------------------------------------------

_ident = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789_",
                 min_size=1, max_size=12)
_name = st.builds(lambda a, b: f"{a}.{b}", _ident, _ident)
_finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                    allow_infinity=False)

_result = st.builds(
    BenchResult,
    name=_name,
    samples_s=st.lists(_finite, min_size=1, max_size=8).map(tuple),
    warmup_discarded=st.integers(min_value=0, max_value=5),
    metrics=st.dictionaries(_ident, _finite, max_size=4),
    tags=st.lists(_ident, max_size=3).map(tuple),
    figure=st.one_of(st.none(), _ident),
)

_environment = st.builds(
    Environment,
    python=_ident, platform=_ident,
    cpu_count=st.integers(min_value=1, max_value=256),
    numpy=_ident,
    git_sha=st.one_of(st.none(), st.text(alphabet="0123456789abcdef",
                                         min_size=40, max_size=40)),
)


@st.composite
def _documents(draw):
    doc = BenchDocument(environment=draw(_environment))
    for result in draw(st.lists(_result, max_size=5,
                                unique_by=lambda r: r.name)):
        doc.add(result)
    return doc


# --- round trip ---------------------------------------------------------------


@given(_documents())
def test_dump_load_round_trip(doc):
    assert load_document(dump_document(doc)) == doc


@given(_documents())
def test_dump_is_canonical(doc):
    """Same document, same bytes — dumps are diffable baselines."""
    assert dump_document(doc) == dump_document(
        load_document(dump_document(doc)))


def test_write_read_file_round_trip(tmp_path):
    doc = BenchDocument(environment=Environment.capture())
    doc.add(BenchResult(name="a.b", samples_s=(0.25, 0.5),
                        metrics={"k": 2.0}, tags=("t",), figure="§4.1"))
    path = tmp_path / "BENCH.json"
    write_document(path, doc)
    loaded = read_document(path)
    assert loaded == doc
    assert loaded.results["a.b"].min_s == 0.25
    assert loaded.results["a.b"].mean_s == pytest.approx(0.375)
    assert loaded.results["a.b"].repeats == 2


def test_derived_aggregates_ride_along_but_are_recomputed(tmp_path):
    doc = BenchDocument(environment=Environment.capture())
    doc.add(BenchResult(name="a.b", samples_s=(1.0, 3.0)))
    data = json.loads(dump_document(doc))
    assert data["results"]["a.b"]["min_s"] == 1.0
    assert data["results"]["a.b"]["mean_s"] == 2.0
    # Tampering with the stored aggregate changes nothing: the loader
    # derives from samples.
    data["results"]["a.b"]["min_s"] = 99.0
    assert load_document(json.dumps(data)).results["a.b"].min_s == 1.0


# --- refusal paths ------------------------------------------------------------


def _valid_dict():
    doc = BenchDocument(environment=Environment.capture())
    doc.add(BenchResult(name="a.b", samples_s=(0.5,)))
    return doc.to_dict()


def test_version_mismatch_is_refused():
    data = _valid_dict()
    data["version"] = BENCH_SCHEMA_VERSION + 1
    with pytest.raises(SchemaVersionError, match="schema version"):
        BenchDocument.from_dict(data)


def test_foreign_format_is_refused():
    data = _valid_dict()
    data["format"] = "somebody-elses-bench"
    with pytest.raises(SchemaVersionError, match="not a repro-bench"):
        BenchDocument.from_dict(data)


def test_legacy_ad_hoc_bench_json_is_refused():
    """The pre-unification shapes (no format/version header) must not
    load as if they were canonical documents."""
    legacy = {"plc": {"scalar_s": 18.0, "batch_s": 1.5, "speedup": 12.0}}
    with pytest.raises(SchemaVersionError):
        BenchDocument.from_dict(legacy)


def test_non_json_text_is_an_error():
    with pytest.raises(ValueError, match="not a JSON document"):
        load_document("this is not json")


def test_top_level_array_is_an_error():
    with pytest.raises(ValueError, match="top level"):
        load_document("[1, 2, 3]")


def test_nan_samples_refuse_to_dump():
    doc = BenchDocument(environment=Environment.capture())
    doc.add(BenchResult(name="a.b", samples_s=(float("nan"),)))
    with pytest.raises(ValueError):
        dump_document(doc)


def test_empty_samples_are_invalid():
    with pytest.raises(ValueError, match="at least one sample"):
        BenchResult(name="a.b", samples_s=())


# --- baseline resolution ------------------------------------------------------


def test_find_document_resolves_directories(tmp_path):
    assert find_document(tmp_path) == tmp_path / "BENCH.json"
    f = tmp_path / "custom.json"
    f.write_text("{}")
    assert find_document(f) == f


# --- trajectory ---------------------------------------------------------------


def test_trajectory_append_and_read(tmp_path):
    path = tmp_path / "trajectory.jsonl"
    doc = BenchDocument(environment=Environment.capture())
    doc.add(BenchResult(name="a.b", samples_s=(0.5, 0.25)))
    append_trajectory(path, doc)
    append_trajectory(path, doc)
    records = read_trajectory(path)
    assert len(records) == 2
    assert records[0]["min_s"] == {"a.b": 0.25}
    assert records[0]["format"] == BENCH_FORMAT
    assert records[0]["environment"]["python"] == doc.environment.python


def test_trajectory_tolerates_torn_tail_and_noise(tmp_path):
    path = tmp_path / "trajectory.jsonl"
    doc = BenchDocument(environment=Environment.capture())
    doc.add(BenchResult(name="a.b", samples_s=(1.0,)))
    append_trajectory(path, doc)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"format": "other"}\n')      # foreign record: skipped
        fh.write(trajectory_line(doc)[:20])    # torn tail: skipped
    assert len(read_trajectory(path)) == 1


def test_trajectory_missing_file_is_empty(tmp_path):
    assert read_trajectory(tmp_path / "nope.jsonl") == []
