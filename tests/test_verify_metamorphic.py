"""Metamorphic-relation tests: FrozenLink honors the Link contract, the
relations hold on the real simulator, and each catches a planted breach."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.runner import ScenarioRunner
from repro.netsim.scenario import FlowRequest, Scenario
from repro.testbed import build_preset_testbed
from repro.verify.metamorphic import (
    FrozenLink,
    check_attenuation_monotonicity,
    check_cbr_contention_monotonicity,
    check_file_size_scaling,
    check_snr_monotonicity,
    check_time_shift,
    frozen_link_decorator,
    shift_scenario,
)

SEED = 7
T_REF = 64.0


@pytest.fixture(scope="module")
def mini3():
    return build_preset_testbed("mini3", seed=SEED)


# --- FrozenLink contract ------------------------------------------------------


def test_frozen_link_pins_channel_but_restamps_time(mini3):
    frozen = FrozenLink(mini3.link("plc", 0, 1), T_REF)
    early, late = frozen.sample(10.0), frozen.sample(5000.0)
    assert early.time == 10.0 and late.time == 5000.0
    assert early.capacity_bps == late.capacity_bps
    assert early.throughput_bps == late.throughput_bps
    assert frozen.capacity_bps(123.0) == early.capacity_bps


def test_frozen_link_series_matches_scalar_path(mini3):
    frozen = FrozenLink(mini3.link("wifi", 0, 1), T_REF)
    ts = np.arange(0.0, 4.0, 0.5)
    series = frozen.sample_series(ts)
    assert np.array_equal(series.times, ts)
    assert np.all(series.capacity_bps == frozen.sample(0.0).capacity_bps)
    assert frozen.name == mini3.link("wifi", 0, 1).name
    assert frozen.medium == "wifi"


def test_frozen_link_decorator_passes_through_none():
    assert frozen_link_decorator(T_REF)(None, "plc", 0, 5) is None


def test_shift_scenario_moves_every_start():
    scenario = Scenario("s")
    scenario.add(FlowRequest("a", 0, 1, 10.0, kind="saturated",
                             medium="plc", duration_s=5.0))
    scenario.add(FlowRequest("b", 1, 2, 12.0, kind="file", medium="wifi",
                             size_bytes=1e6))
    shifted = shift_scenario(scenario, 8.0)
    assert [f.start_s for f in shifted.flows] == [18.0, 20.0]
    assert [f.name for f in shifted.flows] == ["a", "b"]


# --- time shift ---------------------------------------------------------------


def _mixed_scenario(t0):
    scenario = Scenario("meta-mixed")
    scenario.add(FlowRequest("sat", 0, 1, t0, kind="saturated",
                             medium="plc", duration_s=6.0))
    scenario.add(FlowRequest("file", 1, 2, t0 + 1.0, kind="file",
                             medium="hybrid", size_bytes=2e6))
    return scenario


def test_time_shift_relation_holds(mini3):
    assert check_time_shift(mini3, _mixed_scenario(T_REF),
                            delta_s=4.0) == []


def test_time_shift_catches_legacy_horizon_bug(mini3):
    scenario = _mixed_scenario(T_REF)
    scenario.add(FlowRequest("bulk", 0, 2, T_REF, kind="file",
                             medium="plc", size_bytes=1e12))

    def legacy_factory(testbed, **kwargs):
        return ScenarioRunner(testbed, legacy_default_horizon=True,
                              **kwargs)

    diffs = check_time_shift(mini3, scenario, delta_s=4.0,
                             runner_factory=legacy_factory)
    assert diffs and any("bulk" in d for d in diffs)


# --- monotonicity relations ---------------------------------------------------


def test_snr_monotonicity_holds_on_plc_link(mini3):
    assert check_snr_monotonicity(mini3.plc_link(0, 1), T_REF) == []


def test_snr_monotonicity_skips_channelless_links(mini3):
    assert check_snr_monotonicity(mini3.link("wifi", 0, 1), T_REF) == []


@pytest.mark.parametrize("medium", ["plc", "wifi"])
def test_attenuation_monotonicity_holds(mini3, medium):
    assert check_attenuation_monotonicity(
        mini3.link(medium, 0, 1), T_REF) == []


# --- scaling relations --------------------------------------------------------


def test_file_size_scaling_holds(mini3):
    assert check_file_size_scaling(mini3, 0, 1, "wifi",
                                   size_bytes=2e6, factor=3,
                                   t0=T_REF) == []


def test_cbr_contention_monotonicity_holds(mini3):
    assert check_cbr_contention_monotonicity(
        mini3, 0, 1, "wifi", size_bytes=2e6,
        rates_bps=(1e6, 8e6), t0=T_REF) == []
