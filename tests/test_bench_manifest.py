"""The bench manifest stays truthful in both directions.

A new ``benchmarks/test_*.py`` module cannot land without an explicit
manifest entry, and the manifest cannot claim benchmarks the registry
does not carry (or vice versa) — so every registered benchmark has a
pytest surface and the trajectory cannot silently lose coverage.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.manifest import (
    FIGURE_REGENERATIONS,
    HARNESS_MANIFEST,
    MODULE_MANIFEST,
    manifest_names,
    module_for,
)
from repro.bench.spec import load_default_benchmarks

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _modules_on_disk():
    return {p.stem for p in BENCHMARKS_DIR.glob("test_*.py")}


def test_every_benchmark_module_is_in_the_manifest():
    missing = _modules_on_disk() - set(MODULE_MANIFEST)
    assert not missing, (
        f"benchmarks/ modules missing from repro.bench.manifest."
        f"MODULE_MANIFEST (add an entry — harness benchmark names, or "
        f"() for a pytest-benchmark figure regeneration): "
        f"{sorted(missing)}")


def test_manifest_names_no_phantom_modules():
    phantom = set(MODULE_MANIFEST) - _modules_on_disk()
    assert not phantom, (
        f"manifest entries without a benchmarks/ module on disk: "
        f"{sorted(phantom)}")


def test_manifest_matches_the_registry_exactly():
    registered = set(load_default_benchmarks())
    claimed = set(manifest_names())
    assert claimed - registered == set(), (
        "manifest claims benchmarks the registry does not define")
    assert registered - claimed == set(), (
        "registered benchmarks unclaimed by any benchmarks/ module — "
        "they would run in CI but have no pytest surface")


def test_harness_backed_modules_claim_at_least_one_benchmark():
    # The five ported domains plus the harness meta-module must map to
    # real benchmarks; only figure/table regenerations may map to ().
    for module in ("test_medium_sampling_scale",
                   "test_scenario_runner_scale",
                   "test_campaign_backends",
                   "test_snapshot_slicing",
                   "test_bench_harness"):
        assert MODULE_MANIFEST[module], (
            f"{module} must claim its harness benchmarks")


def test_harness_and_regeneration_split_is_disjoint_and_exhaustive():
    # A module is either harness-backed (non-empty names) or a declared
    # figure regeneration — never both, never silently neither.
    overlap = set(HARNESS_MANIFEST) & FIGURE_REGENERATIONS
    assert not overlap, (
        f"modules declared both harness-backed and figure "
        f"regenerations: {sorted(overlap)}")
    assert set(MODULE_MANIFEST) == \
        set(HARNESS_MANIFEST) | FIGURE_REGENERATIONS
    for module, names in HARNESS_MANIFEST.items():
        assert names, (
            f"{module} is in HARNESS_MANIFEST but claims no benchmarks "
            f"— move it to FIGURE_REGENERATIONS or list its names")
    for module in FIGURE_REGENERATIONS:
        assert MODULE_MANIFEST[module] == (), (
            f"{module} is a declared regeneration but the manifest "
            f"maps it to benchmark names")


def test_module_for_inverts_the_manifest():
    load_default_benchmarks()
    assert module_for("meta.noop") == "test_bench_harness"
    assert module_for("medium.plc.sample_series") == \
        "test_medium_sampling_scale"
    with pytest.raises(KeyError, match="not claimed"):
        module_for("no.such_benchmark")
