"""Campaign persistence (JSONL save/load)."""

import json

import pytest

from repro.analysis.traces import (
    Campaign,
    iter_records,
    load_campaign,
    record_survey,
    save_campaign,
)
from repro.core.metrics import LinkMetricRecord


def _rec(t, src="0", dst="1", medium="plc", cap=80e6):
    return LinkMetricRecord(time=t, src=src, dst=dst, medium=medium,
                            capacity_bps=cap, pb_err=0.01)


def test_roundtrip(tmp_path):
    campaign = Campaign(name="night-run", description="test", seed=7)
    for k in range(5):
        campaign.add(_rec(float(k)))
    path = tmp_path / "campaign.jsonl"
    save_campaign(campaign, path)
    loaded = load_campaign(path)
    assert loaded.name == "night-run"
    assert loaded.seed == 7
    assert len(loaded) == 5
    assert loaded.records[3] == campaign.records[3]


def test_iter_records_streams(tmp_path):
    campaign = Campaign(name="s")
    campaign.add(_rec(1.0))
    campaign.add(_rec(2.0, medium="wifi"))
    path = tmp_path / "c.jsonl"
    save_campaign(campaign, path)
    times = [r.time for r in iter_records(path)]
    assert times == [1.0, 2.0]


def test_series_extraction(tmp_path):
    campaign = Campaign(name="s")
    for k in (3, 1, 2):
        campaign.add(_rec(float(k), cap=k * 1e6))
    series = campaign.series("0", "1", "plc")
    assert list(series.times) == [1.0, 2.0, 3.0]   # sorted by time
    assert list(series.values) == [1e6, 2e6, 3e6]
    assert campaign.links() == [("0", "1", "plc")]


def test_rejects_non_campaign_files(tmp_path):
    path = tmp_path / "junk.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(ValueError):
        load_campaign(path)
    path.write_text(json.dumps({"format": "something-else"}) + "\n")
    with pytest.raises(ValueError):
        load_campaign(path)


def test_rejects_future_version(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(json.dumps({"format": "repro-campaign",
                                "version": 99}) + "\n")
    with pytest.raises(ValueError, match="newer"):
        load_campaign(path)


def test_bad_record_line_reported_with_position(tmp_path):
    campaign = Campaign(name="s")
    campaign.add(_rec(1.0))
    path = tmp_path / "c.jsonl"
    save_campaign(campaign, path)
    with path.open("a") as fh:
        fh.write('{"nonsense": true}\n')
    with pytest.raises(ValueError, match=":3"):
        list(iter_records(path))


def test_record_survey_covers_both_media(testbed, t_work, tmp_path):
    campaign = record_survey(testbed, t_work, pairs=[(0, 1), (1, 0)])
    assert len(campaign) == 4  # 2 pairs x 2 media
    media = {r.medium for r in campaign.records}
    assert media == {"plc", "wifi"}
    # And it serialises cleanly.
    path = tmp_path / "survey.jsonl"
    save_campaign(campaign, path)
    assert len(load_campaign(path)) == 4
