"""Cross-module integration: the paper's Table 1 findings, end to end.

Each test exercises multiple subsystems together and asserts the *shape* of
a headline result — who wins, in which direction the correlation points —
rather than exact numbers.
"""

import numpy as np
import pytest

from repro.analysis.asymmetry import asymmetry_report
from repro.analysis.stats import linear_fit, pearson
from repro.core.variation import cycle_scale_stats
from repro.testbed.experiments import poll_ble_series, survey_pairs
from repro.units import MBPS, MINUTE


@pytest.fixture(scope="module")
def quick_survey(testbed, t_work):
    """A thinned Fig. 3 survey: 1 min per medium at 0.5 s samples."""
    pairs = [(i, j) for (i, j) in testbed.same_board_pairs()
             if (i + j) % 3 == 0]  # deterministic thinning
    # Always include the blind-spot pairs (>35 m air) the thinning may drop.
    pairs += [(i, j) for (i, j) in testbed.same_board_pairs()
              if testbed.air_distance(i, j) > 35.0 and (i, j) not in pairs]
    return survey_pairs(testbed, t_work, duration=MINUTE,
                        report_interval=0.5, pairs=pairs)


def test_plc_connectivity_superset_of_wifi(quick_survey):
    """§4.1: (nearly) every WiFi-connected pair is PLC-connected."""
    wifi_pairs = [r for r in quick_survey if r.wifi_connected]
    both = [r for r in wifi_pairs if r.plc_connected]
    assert len(both) >= 0.9 * len(wifi_pairs)


def test_plc_covers_wifi_blind_spots(quick_survey):
    """§4.1: beyond 35 m WiFi dies; PLC still delivers tens of Mbps."""
    far = [r for r in quick_survey if r.air_distance_m > 35.0]
    assert far, "survey should include blind-spot pairs"
    # "No connectivity": at best marginal scraps of MCS0 airtime.
    assert all(r.wifi_mean_mbps < 3.0 for r in far)
    assert max(r.plc_mean_mbps for r in far) > 15.0


def test_roughly_half_of_pairs_prefer_plc(quick_survey):
    connected = [r for r in quick_survey
                 if r.plc_connected or r.wifi_connected]
    plc_wins = sum(r.plc_mean_mbps > r.wifi_mean_mbps for r in connected)
    share = plc_wins / len(connected)
    assert 0.35 < share < 0.8  # paper: 52 %


def test_wifi_much_more_variable_than_plc(quick_survey):
    """§4.1: σ_W up to ~19 Mbps; σ_P mostly below 4 Mbps."""
    plc_stds = [r.plc_std_mbps for r in quick_survey if r.plc_connected]
    wifi_stds = [r.wifi_std_mbps for r in quick_survey if r.wifi_connected]
    assert np.median(wifi_stds) > 2 * np.median(plc_stds)
    assert np.percentile(plc_stds, 90) < 6.0
    assert max(wifi_stds) > 8.0


def test_throughput_degrades_with_cable_distance(quick_survey):
    """Fig. 7: clear degradation with distance, wide spread at any one."""
    d = [r.cable_distance_m for r in quick_survey]
    t = [r.plc_mean_mbps for r in quick_survey]
    assert pearson(d, t) < -0.5


def test_severe_asymmetry_on_a_third_of_pairs(testbed, t_work):
    """§5: ≥1.5× throughput asymmetry on ~30 % of pairs."""
    fwd = {}
    for i, j in testbed.same_board_pairs():
        link = testbed.plc_link(i, j)
        fwd[(i, j)] = np.mean([link.throughput_bps(t_work + k, False)
                               for k in range(5)]) / MBPS
    report = asymmetry_report(fwd, threshold=1.5)
    assert 0.15 < report.severe_fraction < 0.55


def test_ble_is_a_linear_throughput_predictor(testbed, t_work):
    """Fig. 15: BLE ≈ 1.7 T with near-zero intercept."""
    bles, thrs = [], []
    for i, j in testbed.same_board_pairs()[::4]:
        link = testbed.plc_link(i, j)
        ble = link.avg_ble_bps(t_work) / MBPS
        thr = link.throughput_bps(t_work, measured=False) / MBPS
        if thr > 1.0:
            bles.append(ble)
            thrs.append(thr)
    fit = linear_fit(thrs, bles)
    assert fit.slope == pytest.approx(1.7, abs=0.15)
    assert abs(fit.intercept) < 5.0
    assert fit.r_squared > 0.95


def test_quality_and_variability_strongly_anticorrelated(testbed, t_night):
    """Table 1 / §6.2: good links vary far less than bad ones."""
    stats = []
    for (i, j) in [(13, 14), (15, 18), (0, 1), (1, 2), (2, 7), (9, 5),
                   (11, 4), (5, 11)]:
        series = poll_ble_series(testbed, i, j, t_night, 45, 0.05)
        stats.append(cycle_scale_stats(series))
    means = [s.mean_ble_bps for s in stats]
    stds = [s.std_ble_bps for s in stats]
    assert pearson(means, stds) < -0.3
    # And update inter-arrival α grows with quality (α is log-scaled, as in
    # Fig. 11's log axis — raw α spans two orders of magnitude).
    alphas = [np.log10(s.mean_alpha_s) for s in stats]
    assert pearson(means, alphas) > 0.3


def test_broadcast_loss_uninformative_but_pberr_predicts_uetx(
        testbed, t_work):
    """§8.1 both halves, on the same links (working hours: the PBerr range
    is wide enough there to see the relationship)."""
    from repro.core.etx import run_broadcast_probes, measure_u_etx
    rng = np.random.default_rng(5)
    # Good/average links first, genuinely bad ones last — the PBerr range
    # needs both ends for the correlation to mean anything.
    links = [(13, 14), (0, 1), (2, 7), (0, 4), (3, 8), (10, 4), (5, 9)]
    losses, u_etxs, pb_errs = [], [], []
    for (i, j) in links:
        link = testbed.plc_link(i, j)
        losses.append(run_broadcast_probes(
            link, t_work, 200.0, 0.1, rng).loss_rate)
        result = measure_u_etx(link, t_work, 40.0, rng)
        u_etxs.append(result.u_etx)
        pb_errs.append(result.mean_pb_err)
    # Broadcast: good and average links collapse to near-zero loss — no
    # quality signal there (§8.1).
    assert max(losses[:4]) < 0.02
    # Unicast: U-ETX tracks PBerr (nearly linear, §8.1).
    assert pearson(pb_errs, u_etxs) > 0.8
