"""Invariant-registry tests: each registered invariant has a passing and a
failing subject, violations publish ``verify.*`` counters, and two
registries' verify counters merge like any other metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.artifacts import TaskArtifact
from repro.netsim.runner import ScenarioRunner
from repro.netsim.scenario import FlowRequest, FlowResult, Scenario
from repro.obs.metrics import MetricsRegistry
from repro.plc.tonemap import generate_tone_map
from repro.testbed import build_preset_testbed
from repro.verify.invariants import (
    INVARIANT_REGISTRY,
    InvariantViolationError,
    Violation,
    check_invariants,
    enforce_invariants,
    invariants_for,
    register_invariant,
    registered_kinds,
)

SEED = 7


@pytest.fixture(scope="module")
def mini3():
    return build_preset_testbed("mini3", seed=SEED)


@pytest.fixture(scope="module")
def run_outcome(mini3):
    """One real scenario run shared by the passing-subject tests."""
    scenario = Scenario("verify-unit")
    scenario.add(FlowRequest("sat", 0, 1, 10.0, kind="saturated",
                             medium="plc", duration_s=6.0))
    scenario.add(FlowRequest("cbr", 1, 2, 10.0, kind="cbr", medium="wifi",
                             duration_s=6.0, rate_bps=4e6))
    runner = ScenarioRunner(mini3)
    results = runner.run(scenario, horizon_s=20.0)
    return runner, results


# --- registry mechanics -------------------------------------------------------


def test_registered_kinds_cover_the_toolkit():
    assert registered_kinds() == (
        "artifact_task", "flow_results", "pipeline", "reorder_release",
        "runner", "series", "tonemap")


def test_invariants_for_is_name_sorted():
    for kind in registered_kinds():
        names = [inv.name for inv in invariants_for(kind)]
        assert names == sorted(names)
        assert names, f"kind {kind} has no invariants"


def test_duplicate_registration_rejected():
    name = next(iter(INVARIANT_REGISTRY))
    with pytest.raises(ValueError, match="duplicate invariant"):
        register_invariant(name, "runner", "clone")(lambda s: [])


def test_unknown_kind_checks_nothing():
    metrics = MetricsRegistry()
    assert check_invariants("no_such_kind", object(),
                            metrics=metrics) == []
    assert metrics.counter("verify.checks") == 0


def test_enforce_raises_with_violations_attached():
    bad = {"scheduled": 5, "released": 3, "pending": 0, "duplicates": 0}
    with pytest.raises(InvariantViolationError) as err:
        enforce_invariants("pipeline", bad, subject_name="unit",
                           metrics=MetricsRegistry())
    assert isinstance(err.value, AssertionError)
    assert all(isinstance(v, Violation) for v in err.value.violations)
    assert err.value.violations[0].subject == "unit"


# --- counter publication & registry merge -------------------------------------


def test_checks_counter_counts_every_invariant(run_outcome):
    runner, _ = run_outcome
    metrics = MetricsRegistry()
    assert check_invariants("runner", runner.stats, metrics=metrics) == []
    assert metrics.counter("verify.checks") == len(invariants_for("runner"))
    assert metrics.counters_with_prefix("verify.violations.") == {}


def test_violation_counter_named_after_invariant():
    metrics = MetricsRegistry()
    violations = check_invariants(
        "reorder_release", [1, 2, 2], subject_name="dup", metrics=metrics)
    assert [v.invariant for v in violations] == ["reorder.sequence_monotone"]
    assert metrics.counter(
        "verify.violations.reorder.sequence_monotone") == 1


def test_verify_counters_merge_across_registries():
    a, b = MetricsRegistry(), MetricsRegistry()
    check_invariants("reorder_release", [3, 1], metrics=a)
    check_invariants("reorder_release", [5, 4], metrics=b)
    check_invariants("reorder_release", [1, 2, 3], metrics=b)
    a.merge(b)
    assert a.counter("verify.checks") == 3
    assert a.counter("verify.violations.reorder.sequence_monotone") == 2
    # A round trip through the artifact form merges identically.
    c = MetricsRegistry()
    c.merge(MetricsRegistry.from_dict(a.to_dict()).to_dict())
    assert c.counter("verify.checks") == 3


# --- runner & flow-result invariants ------------------------------------------


def test_runner_invariants_hold_on_real_run(run_outcome):
    runner, results = run_outcome
    assert check_invariants("runner", runner.stats,
                            metrics=MetricsRegistry()) == []
    assert check_invariants("flow_results", results,
                            metrics=MetricsRegistry()) == []


class _BadStats:
    invariant_violations = 2
    max_domain_airtime = 1.5
    domain_airtime = {"plc": 7.0}
    domain_quanta = {"plc": 4}


def test_runner_invariants_flag_overallocation():
    violations = check_invariants("runner", _BadStats(),
                                  metrics=MetricsRegistry())
    names = sorted(v.invariant for v in violations)
    assert "runner.work_conservation" in names
    assert "runner.airtime_bounded" in names


def _flow(name="f", **overrides):
    request = FlowRequest(name, 0, 1, 100.0, kind="file", medium="plc",
                          size_bytes=1e6)
    return FlowResult(request, **overrides)


def test_flow_invariants_flag_negative_and_time_travel():
    results = {
        "neg": _flow("neg", delivered_bytes=-4.0, active_time_s=1.0),
        "early": _flow("early", delivered_bytes=10.0, completed_at=50.0),
    }
    names = {v.invariant for v in check_invariants(
        "flow_results", results, metrics=MetricsRegistry())}
    assert names == {"flows.nonnegative", "flows.completion_after_start"}


def test_flow_invariants_flag_offered_load_breach():
    request = FlowRequest("over", 0, 1, 0.0, kind="cbr", medium="wifi",
                          duration_s=10.0, rate_bps=1e6)
    results = {"over": FlowResult(request, delivered_bytes=10e6,
                                  active_time_s=10.0)}
    names = {v.invariant for v in check_invariants(
        "flow_results", results, metrics=MetricsRegistry())}
    assert "flows.offered_load_cap" in names


# --- series & tonemap invariants ----------------------------------------------


@pytest.mark.parametrize("medium", ["plc", "wifi"])
def test_series_invariants_hold_on_sampled_link(mini3, medium):
    link = mini3.link(medium, 0, 1)
    series = link.sample_series(np.arange(50.0, 52.0, 0.25))
    assert check_invariants("series", series,
                            metrics=MetricsRegistry()) == []


def test_series_invariants_flag_corrupted_columns(mini3):
    series = mini3.link("plc", 0, 1).sample_series(
        np.arange(50.0, 52.0, 0.25))
    series.data["capacity_bps"][1] = -1.0
    series.data["loss"][2] = 1.5
    names = {v.invariant for v in check_invariants(
        "series", series, metrics=MetricsRegistry())}
    assert {"series.rates_valid", "series.loss_in_unit_interval"} <= names


def test_tonemap_invariant_holds_on_generated_map(mini3):
    link = mini3.plc_link(0, 1)
    tonemap = generate_tone_map(link.channel, 50.0, tmi=1)
    assert check_invariants("tonemap", tonemap,
                            metrics=MetricsRegistry()) == []


class _BadToneMap:
    pb_err = 1.5
    fec_rate = 0.0
    bits = np.array([-1])

    def ble_per_slot_bps(self):
        return np.array([-5.0, np.nan])

    def avg_ble_bps(self):
        return 100.0


def test_tonemap_invariant_flags_out_of_range_fields():
    violations = check_invariants("tonemap", _BadToneMap(),
                                  metrics=MetricsRegistry())
    text = "\n".join(v.message for v in violations)
    assert "pb_err" in text and "fec_rate" in text


# --- pipeline & artifact invariants -------------------------------------------


def test_pipeline_conservation_accepts_pending_packets():
    ok = {"scheduled": 10, "released": 7, "pending": 3, "duplicates": 0,
          "released_unique": 7}
    assert check_invariants("pipeline", ok, metrics=MetricsRegistry()) == []


def test_pipeline_conservation_flags_duplicate_releases():
    bad = {"scheduled": 10, "released": 10, "pending": 0, "duplicates": 0,
           "released_unique": 9}
    violations = check_invariants("pipeline", bad,
                                  metrics=MetricsRegistry())
    assert "duplicate release" in violations[0].message


def _artifact(stats, records=()):
    return TaskArtifact(task_key="t/abc", spec={"kind": "scenario"},
                        task_seed=1, records=list(records), stats=stats)


def test_artifact_invariants_hold_on_clean_stats():
    artifact = _artifact(
        stats={"quanta": 8, "invariant_violations": 0,
               "max_domain_airtime": 0.9,
               "domain_airtime": {"plc": 3.5}, "domain_quanta": {"plc": 8}},
        records=[{"mean_rate_bps": 1e6, "finished": True,
                  "completed_at": 12.0}])
    assert check_invariants("artifact_task", artifact,
                            metrics=MetricsRegistry()) == []


def test_artifact_invariants_flag_bad_stats_and_records():
    artifact = _artifact(
        stats={"quanta": 8, "invariant_violations": 1,
               "max_domain_airtime": 1.2,
               "domain_airtime": {"plc": 9.0}, "domain_quanta": {"plc": 8}},
        records=[{"mean_rate_bps": -1.0},
                 {"finished": True, "completed_at": None}])
    names = {v.invariant for v in check_invariants(
        "artifact_task", artifact, metrics=MetricsRegistry())}
    assert names == {"artifact.runner_stats", "artifact.records_sane"}
