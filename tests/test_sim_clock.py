"""Mains clock and calendar helpers."""

import pytest

from repro.sim.clock import MainsClock, tone_map_slot_at
from repro.units import DAY, HALF_MAINS_CYCLE, HOUR


def test_slot_period_is_half_mains_cycle():
    # Slots repeat every 10 ms (§6.1, Fig. 9).
    for t in (0.0, 0.123, 17.5):
        assert tone_map_slot_at(t) == tone_map_slot_at(t + HALF_MAINS_CYCLE)


def test_all_six_slots_appear_within_one_period():
    slots = {tone_map_slot_at(k * HALF_MAINS_CYCLE / 6 + 1e-6)
             for k in range(6)}
    assert slots == set(range(6))


def test_slot_boundary_rounding_never_overflows():
    # Just inside the last slot (beyond the boundary-snap tolerance).
    assert tone_map_slot_at(HALF_MAINS_CYCLE * (1 - 1e-4)) == 5
    # Exactly at (or within float noise of) the boundary wraps to slot 0.
    assert tone_map_slot_at(HALF_MAINS_CYCLE - 1e-12) == 0
    assert tone_map_slot_at(0.0) == 0


def test_invalid_slot_count_rejected():
    with pytest.raises(ValueError):
        tone_map_slot_at(0.0, num_slots=0)


def test_calendar_anchor_is_monday_midnight():
    clock = MainsClock()
    assert clock.weekday(0.0) == 0
    assert clock.weekday_name(0.0) == "Mon"
    assert clock.hour_of_day(0.0) == 0.0


def test_weekend_detection():
    clock = MainsClock()
    assert not clock.is_weekend(clock.at(day=4, hour=12))   # Friday
    assert clock.is_weekend(clock.at(day=5, hour=12))       # Saturday
    assert clock.is_weekend(clock.at(day=6, hour=12))       # Sunday
    assert not clock.is_weekend(clock.at(day=7, hour=12))   # next Monday


def test_working_hours_window():
    clock = MainsClock()
    assert clock.is_working_hours(clock.at(day=1, hour=9))
    assert not clock.is_working_hours(clock.at(day=1, hour=7))
    assert not clock.is_working_hours(clock.at(day=1, hour=19))
    assert not clock.is_working_hours(clock.at(day=5, hour=9))  # Saturday


def test_at_composes_day_and_hour():
    clock = MainsClock()
    t = MainsClock.at(day=1, hour=16.5)
    assert t == DAY + 16.5 * HOUR
    assert clock.hour_of_day(t) == 16.5


def test_cycle_index_advances_every_20ms():
    clock = MainsClock()
    assert clock.cycle_index(0.019) == 0
    assert clock.cycle_index(0.021) == 1
