"""Statistics helpers: fits, CDFs, asymmetry reports."""

import numpy as np
import pytest

from repro.analysis.asymmetry import asymmetry_report
from repro.analysis.stats import (
    empirical_cdf,
    linear_fit,
    pearson,
    summarize,
)


def test_linear_fit_recovers_known_line():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 100, 200)
    y = 1.7 * x - 0.65 + rng.normal(0, 0.5, len(x))
    fit = linear_fit(x, y)
    assert fit.slope == pytest.approx(1.7, abs=0.05)
    assert fit.intercept == pytest.approx(-0.65, abs=0.5)
    assert fit.r_squared > 0.99
    assert fit.residuals_normal
    assert fit.predict(10.0) == pytest.approx(1.7 * 10 - 0.65, abs=0.6)


def test_linear_fit_flags_non_normal_residuals():
    rng = np.random.default_rng(1)
    x = np.linspace(0, 100, 400)
    y = 2 * x + rng.exponential(20.0, len(x))  # heavily skewed residuals
    fit = linear_fit(x, y)
    assert not fit.residuals_normal


def test_linear_fit_needs_three_points():
    with pytest.raises(ValueError):
        linear_fit([1, 2], [1, 2])


def test_empirical_cdf_monotone_and_normalised():
    samples = [3.0, 1.0, 2.0, 2.0]
    grid = [0.0, 1.5, 2.5, 10.0]
    cdf = empirical_cdf(samples, grid)
    assert list(cdf) == [0.0, 0.25, 0.75, 1.0]
    with pytest.raises(ValueError):
        empirical_cdf([], grid)


def test_summarize():
    s = summarize([1.0, 2.0, 3.0])
    assert (s.n, s.mean, s.minimum, s.maximum) == (3, 2.0, 1.0, 3.0)
    with pytest.raises(ValueError):
        summarize([])


def test_pearson_signs():
    x = np.arange(10.0)
    assert pearson(x, 2 * x) == pytest.approx(1.0)
    assert pearson(x, -x) == pytest.approx(-1.0)


def test_asymmetry_report_ratio_and_fraction():
    fwd = {(0, 1): 60.0, (1, 0): 30.0,     # 2.0x
           (2, 3): 50.0, (3, 2): 49.0,     # ~1.02x
           (4, 5): 0.1, (5, 4): 0.2}       # both dead → skipped
    report = asymmetry_report(fwd, threshold=1.5)
    assert report.n_pairs == 2
    assert report.severe_fraction == pytest.approx(0.5)
    assert report.ratios.max() == pytest.approx(2.0)


def test_asymmetry_worst_pairs_ordering():
    fwd = {(0, 1): 90.0, (1, 0): 30.0,
           (2, 3): 80.0, (3, 2): 60.0}
    report = asymmetry_report(fwd)
    names = ["0-1", "2-3"]
    worst = report.worst_pairs(names, k=1)
    assert worst[0][0] == "0-1"
