"""CLI entry points (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_probe_prints_metrics_and_advice(capsys):
    rc = main(["probe", "0", "1", "--seed", "7"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "avg BLE" in out
    assert "probing advice" in out
    assert "U-ETX" in out


def test_probe_cross_board_refused(capsys):
    rc = main(["probe", "0", "15"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "different boards" in err


def test_route_cross_board_succeeds(capsys):
    rc = main(["route", "0", "15"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "route 0 -> 15" in out
    assert "[wifi]" in out


def test_survey_save_and_report_roundtrip(tmp_path, capsys):
    path = tmp_path / "c.jsonl"
    rc = main(["survey", "--save", str(path), "--top", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Dual-medium survey" in out
    assert path.exists()

    rc = main(["report", str(path), "--top", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-link summary" in out


def test_survey_respects_time_options(capsys):
    rc = main(["survey", "--day", "5", "--hour", "23.0", "--top", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "day 5 23h" in out


# --- error paths --------------------------------------------------------------


def test_campaign_bad_preset_name(tmp_path, capsys):
    rc = main(["campaign", "--preset", "atlantis",
               "--out", str(tmp_path / "x.jsonl")])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unknown testbed preset 'atlantis'" in err
    assert "mini3" in err  # the message lists the valid names


def test_survey_unwritable_save_path(capsys):
    rc = main(["survey", "--pairs", "0-1",
               "--save", "/nonexistent-dir/deep/c.jsonl"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "cannot write" in err


def test_campaign_unwritable_out_path(capsys):
    rc = main(["campaign", "--preset", "mini3", "--quiet",
               "--out", "/nonexistent-dir/deep/c.jsonl"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "cannot write" in err


def test_survey_empty_pair_selection(capsys):
    rc = main(["survey", "--pairs", ""])
    err = capsys.readouterr().err
    assert rc == 1
    assert "empty survey" in err


def test_survey_malformed_pairs(capsys):
    rc = main(["survey", "--pairs", "0-1,zap"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "bad pair 'zap'" in err


def test_campaign_empty_seed_list(tmp_path, capsys):
    rc = main(["campaign", "--preset", "mini3", "--seeds", ",",
               "--out", str(tmp_path / "x.jsonl")])
    err = capsys.readouterr().err
    assert rc == 1
    assert "no seeds" in err


def test_campaign_unknown_scenario(tmp_path, capsys):
    rc = main(["campaign", "--preset", "mini3", "--kind", "scenario",
               "--scenarios", "does-not-exist", "--quiet",
               "--out", str(tmp_path / "x.jsonl")])
    err = capsys.readouterr().err
    assert rc == 1
    assert "unknown scenario" in err


def test_report_rejects_non_campaign_file(tmp_path, capsys):
    path = tmp_path / "junk.jsonl"
    path.write_text("this is not json\n")
    rc = main(["report", str(path)])
    err = capsys.readouterr().err
    assert rc == 1
    assert "not a campaign file" in err


def test_report_missing_file(capsys):
    rc = main(["report", "/no/such/file.jsonl"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "cannot read" in err
