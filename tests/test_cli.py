"""CLI entry points (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_probe_prints_metrics_and_advice(capsys):
    rc = main(["probe", "0", "1", "--seed", "7"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "avg BLE" in out
    assert "probing advice" in out
    assert "U-ETX" in out


def test_probe_cross_board_refused(capsys):
    rc = main(["probe", "0", "15"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "different boards" in err


def test_route_cross_board_succeeds(capsys):
    rc = main(["route", "0", "15"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "route 0 -> 15" in out
    assert "[wifi]" in out


def test_survey_save_and_report_roundtrip(tmp_path, capsys):
    path = tmp_path / "c.jsonl"
    rc = main(["survey", "--save", str(path), "--top", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Dual-medium survey" in out
    assert path.exists()

    rc = main(["report", str(path), "--top", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-link summary" in out


def test_survey_respects_time_options(capsys):
    rc = main(["survey", "--day", "5", "--hour", "23.0", "--top", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "day 5 23h" in out
