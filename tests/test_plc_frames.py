"""Frame structures: SoF delimiters and SACKs."""

import pytest

from repro.plc.frames import PlcFrame, Sack, SofDelimiter


def _sof(**kw):
    base = dict(timestamp=1.0, src="a", dst="b", tmi=3, ble_bps=1e8,
                slot=2, n_pbs=3, duration_s=2e-3)
    base.update(kw)
    return SofDelimiter(**base)


def test_sof_validation():
    with pytest.raises(ValueError):
        _sof(ble_bps=-1.0)
    with pytest.raises(ValueError):
        _sof(n_pbs=0)


def test_sof_flags_default_false():
    sof = _sof()
    assert not sof.is_retransmission
    assert not sof.is_sound
    assert not sof.is_broadcast


def test_sack_counts_errored_pbs():
    sack = Sack(timestamp=1.0, src="b", dst="a",
                pb_ok=(True, False, True))
    assert sack.errored_pbs == 1
    assert not sack.all_ok
    clean = Sack(timestamp=1.0, src="b", dst="a", pb_ok=(True, True))
    assert clean.all_ok


def test_frame_bundles_sof_and_sack():
    frame = PlcFrame(sof=_sof(), payload_bytes=1500,
                     sack=Sack(2.0, "b", "a", (True, True, True)))
    assert frame.payload_bytes == 1500
    assert frame.sack.all_ok
