"""The parallel campaign engine: determinism, resume, failure handling.

The acceptance-grade end-to-end check lives here: an office-preset survey
(9 pairs × 3 seeds) must produce bit-identical JSONL artifacts at 1 and 4
workers and resume correctly after an interrupted run.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignAborted,
    CampaignEngine,
    EngineConfig,
    ExperimentSpec,
    check_specs,
    read_artifacts,
    run_campaign,
    scenario_campaign,
    survey_specs,
)
from repro.cli import main

PAIRS = [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1), (0, 3),
         (3, 0), (1, 3)]
SEEDS = [7, 8, 9]


def _office_specs():
    return survey_specs("office", SEEDS, PAIRS, duration_s=5.0,
                        interval_s=0.5)


def test_office_survey_bit_identical_across_worker_counts(tmp_path):
    """Acceptance: ≥9 pairs × 3 seeds, workers 1 vs 4, same bytes."""
    specs = _office_specs()
    p1, p4 = tmp_path / "w1.jsonl", tmp_path / "w4.jsonl"
    s1 = run_campaign(specs, p1, workers=1)
    s4 = run_campaign(specs, p4, workers=4)
    assert s1.completed == s4.completed == len(specs) == 27
    assert p1.read_bytes() == p4.read_bytes()
    _, tasks = read_artifacts(p1)
    assert len(tasks) == 27
    assert all(t.records[0]["plc_mean_mbps"] >= 0 for t in tasks)


def test_resume_after_interrupted_run(tmp_path):
    """Kill mid-campaign (simulated by a truncated artifact file) →
    rerun completes only the remainder and converges to the same bytes."""
    specs = _office_specs()
    clean, interrupted = tmp_path / "clean.jsonl", tmp_path / "int.jsonl"
    run_campaign(specs, clean, workers=0)

    # A killed run leaves a complete prefix plus half a task line.
    lines = clean.read_text().splitlines(keepends=True)
    interrupted.write_text("".join(lines[:11]) + lines[11][:37])
    stats = run_campaign(specs, interrupted, workers=0)
    assert stats.resumed == 10
    assert stats.completed == len(specs) - 10
    assert interrupted.read_bytes() == clean.read_bytes()


def test_resume_disabled_redoes_everything(tmp_path):
    specs = _office_specs()[:4]
    path = tmp_path / "a.jsonl"
    run_campaign(specs, path, workers=0)
    stats = run_campaign(specs, path, workers=0, resume=False)
    assert stats.resumed == 0 and stats.completed == 4


def test_retry_with_backoff_recovers_flaky_task(tmp_path):
    spec = ExperimentSpec.make("flaky", "mini3", 7, fail_attempts=2)
    stats = run_campaign([spec], tmp_path / "f.jsonl", workers=0,
                         retries=2, backoff_base_s=0.0)
    assert stats.retries == 2
    assert stats.completed == 1 and stats.failed == 0
    _, tasks = read_artifacts(tmp_path / "f.jsonl")
    assert tasks[0].records[0]["survived_attempt"] == 2


def test_circuit_breaker_aborts_but_keeps_artifacts(tmp_path):
    specs = [ExperimentSpec.make("rng_probe", "mini3", 7, idx=0),
             ExperimentSpec.make("flaky", "mini3", 7, fail_attempts=9)]
    path = tmp_path / "b.jsonl"
    with pytest.raises(CampaignAborted):
        run_campaign(specs, path, workers=0, retries=1,
                     backoff_base_s=0.0, max_failures=0)
    _, tasks = read_artifacts(path)
    assert [t.spec["kind"] for t in tasks] == ["rng_probe"]
    # The breaker threshold is honoured: allowing one failure completes.
    stats = run_campaign(specs, path, workers=0, retries=1,
                         backoff_base_s=0.0, max_failures=1)
    assert stats.failed == 1 and stats.resumed == 1
    assert stats.failures[0].attempts == 2


def test_per_task_timeout_counts_and_fails(tmp_path):
    """A task that outlives its budget is abandoned, retried, and finally
    reported as a timeout failure (pool mode only)."""
    spec = ExperimentSpec.make("sleepy", "mini3", 7, sleep_s=3.0)
    config = EngineConfig(workers=2, timeout_s=0.3, retries=1,
                          backoff_base_s=0.0, max_failures=5)
    engine = CampaignEngine([spec], tmp_path / "t.jsonl", config=config)
    stats = engine.run()
    assert stats.timeouts == 2  # first attempt + its retry
    assert stats.failed == 1 and stats.completed == 0
    assert "Timeout" in stats.failures[0].error


def test_duplicate_task_keys_rejected():
    spec = ExperimentSpec.make("rng_probe", "mini3", 7, idx=1)
    with pytest.raises(ValueError, match="duplicate task key"):
        check_specs([spec, spec])


def test_unknown_preset_rejected_before_any_work(tmp_path):
    spec = ExperimentSpec.make("rng_probe", "atlantis", 7)
    with pytest.raises(KeyError, match="unknown testbed preset"):
        run_campaign([spec], tmp_path / "x.jsonl", workers=0)


def test_scenario_campaign_aggregates_runner_stats(tmp_path):
    stats = scenario_campaign("mini3", [7, 8], ["mini3-mixed"],
                              tmp_path / "sc.jsonl", workers=0,
                              horizon_s=90.0)
    assert stats.completed == 2
    assert stats.runner["quanta"] > 0
    assert 0.0 <= stats.runner["cache_hit_rate"] <= 1.0
    assert stats.runner.get("invariant_violations", 0) == 0
    _, tasks = read_artifacts(tmp_path / "sc.jsonl")
    flows = {r["flow"] for t in tasks for r in t.records}
    assert flows == {"cbr", "file", "wifi"}


def test_cli_campaign_end_to_end(tmp_path, capsys):
    out = tmp_path / "cli.jsonl"
    rc = main(["campaign", "--preset", "mini3", "--seeds", "7,8",
               "--out", str(out), "--workers", "0", "--duration", "2",
               "--interval", "0.5", "--quiet"])
    text = capsys.readouterr().out
    assert rc == 0
    assert "campaign survey-mini3" in text
    # Rerun resumes everything and reports it.
    rc = main(["campaign", "--preset", "mini3", "--seeds", "7,8",
               "--out", str(out), "--workers", "0", "--duration", "2",
               "--interval", "0.5", "--quiet"])
    text = capsys.readouterr().out
    assert rc == 0
    assert ["12"] == [
        row.split()[-1] for row in text.splitlines()
        if row.startswith("resumed")]

    rc = main(["report", str(out)])
    text = capsys.readouterr().out
    assert rc == 0
    assert "task census" in text and "survey_pair" in text


# --- failure-path units (chaos PR satellites) ---------------------------------


def test_expire_timeouts_abandons_only_overdue_attempts(tmp_path):
    """Unit-level sweep of ``_expire_timeouts``: attempts past the budget
    are abandoned (timeout counted, retry scheduled with the
    deterministic error string); in-budget attempts stay in flight."""
    import itertools
    from concurrent.futures import Future

    from repro.campaign import CampaignStats
    from repro.obs import FakeClock

    spec_old = ExperimentSpec.make("rng_probe", "mini3", 7, idx=0)
    spec_new = ExperimentSpec.make("rng_probe", "mini3", 7, idx=1)
    clock = FakeClock(start=100.0)
    engine = CampaignEngine(
        [spec_old, spec_new], tmp_path / "x.jsonl",
        config=EngineConfig(workers=1, timeout_s=1.0, retries=1,
                            backoff_base_s=0.0),
        clock=clock)
    now = clock.now()
    stale, fresh = Future(), Future()
    in_flight = {stale: ([(spec_old, 0)], now - 5.0),
                 fresh: ([(spec_new, 0)], now - 0.01)}
    heap, stats = [], CampaignStats()
    abandoned = engine._expire_timeouts(in_flight, heap,
                                        itertools.count(), stats)
    assert abandoned == 1
    assert list(in_flight) == [fresh]  # the in-budget attempt survives
    assert stats.timeouts == 1 and stats.retries == 1
    _, _, spec, attempt = heap[0]
    assert spec.task_key() == spec_old.task_key()
    assert attempt == 1  # retry carries the incremented attempt


def test_retry_heap_is_fifo_under_equal_deadlines(tmp_path):
    """Retries whose backoffs expire at the same instant dequeue in
    submission order — the tiebreak counter, not spec comparison (specs
    are unorderable) or hash order, decides."""
    import heapq
    import itertools

    from repro.campaign import CampaignStats
    from repro.obs import FakeClock

    specs = [ExperimentSpec.make("rng_probe", "mini3", 7, idx=i)
             for i in range(4)]
    engine = CampaignEngine(
        specs, tmp_path / "x.jsonl",
        config=EngineConfig(workers=1, retries=3, backoff_base_s=0.0),
        clock=FakeClock(start=1000.0))
    heap, tiebreak, stats = [], itertools.count(), CampaignStats()
    for spec in specs:
        engine._handle_failure(spec, 0, "boom", heap, tiebreak, stats)
    assert {entry[0] for entry in heap} == {1000.0}  # all deadlines equal
    popped = [heapq.heappop(heap)[2].task_key() for _ in range(len(specs))]
    assert popped == [s.task_key() for s in specs]


def test_breaker_threshold_boundary_is_exact(tmp_path):
    """``max_failures`` is inclusive: exactly N permanent failures
    complete the campaign; the (N+1)-th opens the breaker."""
    specs = [ExperimentSpec.make("flaky", "mini3", s, fail_attempts=9)
             for s in (7, 8, 9)]
    stats = run_campaign(specs, tmp_path / "at-cap.jsonl", workers=0,
                         retries=0, max_failures=3)
    assert stats.failed == 3 and stats.completed == 0
    assert len(stats.failures) == 3
    with pytest.raises(CampaignAborted):
        run_campaign(specs, tmp_path / "over-cap.jsonl", workers=0,
                     retries=0, max_failures=2)
