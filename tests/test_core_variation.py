"""Three-timescale variation analysis (§6)."""

import numpy as np
import pytest

from repro.core.metrics import MetricSeries
from repro.core.variation import (
    cycle_scale_stats,
    detect_daily_event,
    hour_of_day_profile,
    invariance_scale_stats,
    probing_interval_suggestion,
    quality_variability_correlation,
)
from repro.plc.sniffer import capture_saturated
from repro.sim.clock import MainsClock
from repro.units import HOUR, MBPS


def test_invariance_stats_from_capture(testbed, t_night):
    link = testbed.plc_link(11, 4)
    sofs = capture_saturated(link, t_night, 0.5)
    stats = invariance_scale_stats(sofs)
    assert stats.slot_means_bps.shape == (6,)
    assert stats.periodicity_s == 0.010
    # The noisy room's mains-synchronous noise spreads the slots (Fig. 9).
    assert stats.slot_spread_ratio > 1.05


def test_invariance_requires_sofs():
    with pytest.raises(ValueError):
        invariance_scale_stats([])


def test_cycle_scale_alpha_counts_value_changes():
    times = np.arange(0, 10, 0.05)
    values = np.where(times < 5, 100.0, 110.0)  # one change at t=5
    stats = cycle_scale_stats(MetricSeries(times, values))
    assert stats.n_updates == 1
    assert stats.mean_ble_bps == pytest.approx(values.mean())


def test_cycle_scale_stable_link_alpha_is_window_length():
    times = np.arange(0, 10, 0.05)
    stats = cycle_scale_stats(MetricSeries(times, np.full_like(times, 5.0)))
    assert stats.n_updates == 0
    assert stats.mean_alpha_s == pytest.approx(times[-1] - times[0])


def test_quality_variability_anticorrelation(testbed, t_night):
    """§6.2's headline: good links vary less (negative correlation)."""
    from repro.testbed.experiments import poll_ble_series
    stats = []
    for (i, j) in [(13, 14), (15, 18), (0, 1), (2, 7), (11, 4), (5, 11)]:
        series = poll_ble_series(testbed, i, j, t_night, 60, 0.05)
        stats.append(cycle_scale_stats(series))
    corr = quality_variability_correlation(stats)
    assert corr < -0.3


def test_hour_of_day_profile_splits_weekday_weekend():
    clock = MainsClock()
    times = np.arange(0, 14 * 24 * HOUR, HOUR / 2)
    # Signal: high at night, low during weekday working hours.
    values = np.array([
        50.0 if (clock.is_working_hours(t)) else 90.0 for t in times])
    series = MetricSeries(times, values)
    profile = hour_of_day_profile(series)
    assert profile.weekday_mean[11] == pytest.approx(50.0)
    assert profile.weekday_mean[23] == pytest.approx(90.0)
    assert profile.weekend_mean[11] == pytest.approx(90.0)


def test_detect_daily_event_sees_lights_off():
    clock = MainsClock()
    times = np.arange(0, 3 * 24 * HOUR, 300.0)
    values = np.array([100.0 if clock.hour_of_day(t) >= 21 else 80.0
                       for t in times])
    shift = detect_daily_event(MetricSeries(times, values), event_hour=21.0)
    assert shift == pytest.approx(20.0, abs=1.0)


def test_detect_daily_event_requires_coverage():
    series = MetricSeries([0.0, 1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        detect_daily_event(series, event_hour=21.0)


def test_probing_interval_suggestion_orders_by_quality():
    stable = cycle_scale_stats(MetricSeries(
        np.arange(0, 10, 0.05), np.full(200, 140 * MBPS)))
    rng = np.random.default_rng(0)
    jumpy_vals = 40 * MBPS + 8 * MBPS * rng.standard_normal(200)
    jumpy = cycle_scale_stats(MetricSeries(np.arange(0, 10, 0.05),
                                           jumpy_vals))
    assert probing_interval_suggestion(stable) > \
        probing_interval_suggestion(jumpy)


def test_correlation_needs_three_links():
    with pytest.raises(ValueError):
        quality_variability_correlation([])


def test_decompose_timescales_validation():
    from repro.core.variation import decompose_timescales
    with pytest.raises(ValueError):
        decompose_timescales(np.zeros((3, 6)), np.arange(4))
    with pytest.raises(ValueError):
        decompose_timescales(np.zeros((2, 6)), np.arange(2))


def test_decompose_constant_signal_is_zero_variance():
    from repro.core.variation import decompose_timescales
    t = np.arange(0, 100, 0.5)
    samples = np.full((len(t), 6), 100.0)
    d = decompose_timescales(samples, t)
    assert d.total_variance == 0.0


def test_decompose_recovers_engineered_components():
    from repro.core.variation import decompose_timescales
    rng = np.random.default_rng(4)
    t = np.arange(0, 600, 0.5)
    slot_structure = np.array([-6, -2, 0, 2, 4, 2], dtype=float)
    trend = 5.0 * np.sin(2 * np.pi * t / 600.0)          # random scale
    fast = 1.0 * rng.standard_normal(len(t))             # cycle scale
    samples = (100.0 + trend + fast)[:, None] + slot_structure[None, :]
    d = decompose_timescales(samples, t)
    # All three components present, invariance dominating (slot var ~11).
    assert d.invariance_share > d.cycle_share > 0.01
    assert d.random_share > 0.1
    assert d.invariance_share + d.cycle_share + d.random_share == \
        pytest.approx(1.0)


def test_decompose_on_simulated_links(testbed, t_night):
    """Bad links are relatively far more variable than good ones, and all
    three timescales contribute on both."""
    from repro.core.variation import decompose_timescales
    t = np.arange(t_night, t_night + 120, 0.5)
    out = {}
    for (i, j) in [(13, 14), (11, 4)]:
        link = testbed.plc_link(i, j)
        samples = np.array([link.ble_per_slot_bps(float(x)) for x in t])
        mean = samples.mean()
        d = decompose_timescales(samples, t)
        out[(i, j)] = d.total_variance / mean ** 2  # relative variance
        assert d.invariance_share + d.cycle_share + d.random_share == \
            pytest.approx(1.0)
    assert out[(11, 4)] > 3 * out[(13, 14)]
