"""Bit loading, BLE Definition 1, PB error model."""

import numpy as np
import pytest

from repro.plc import phy
from repro.plc.spec import HPAV, MODULATION_SNR_THRESHOLDS_DB
from repro.units import MBPS


def test_select_bits_monotone_in_snr():
    snr = np.linspace(-10, 45, 200)
    bits = phy.select_bits(snr)
    assert (np.diff(bits) >= 0).all()
    assert bits[0] == 0
    assert bits[-1] == 10


def test_select_bits_respects_backoff():
    snr = np.array([MODULATION_SNR_THRESHOLDS_DB[2] + 0.5])  # just above QPSK
    assert phy.select_bits(snr, backoff_db=0.0)[0] == 2
    assert phy.select_bits(snr, backoff_db=1.0)[0] == 1


def test_ble_definition_1():
    """BLE = B·R·(1−PBerr)/Tsym, exactly."""
    assert phy.ble_bps(1000, 0.5, 0.1, 1e-3) == pytest.approx(
        1000 * 0.5 * 0.9 / 1e-3)


def test_ble_rejects_bad_inputs():
    with pytest.raises(ValueError):
        phy.ble_bps(100, 0.5, 1.5, 1e-3)
    with pytest.raises(ValueError):
        phy.ble_bps(100, 0.5, 0.1, 0.0)


def test_pb_error_decreases_with_margin():
    bits = np.full(HPAV.num_carriers, 4)
    snr_low = np.full(HPAV.num_carriers, 11.0)
    snr_high = np.full(HPAV.num_carriers, 20.0)
    assert phy.pb_error_probability(snr_low, bits) > \
        phy.pb_error_probability(snr_high, bits)


def test_pb_error_is_one_with_no_loaded_carriers():
    bits = np.zeros(HPAV.num_carriers, dtype=int)
    snr = np.full(HPAV.num_carriers, -20.0)
    assert phy.pb_error_probability(snr, bits) == 1.0


def test_pb_error_floor_and_cap():
    bits = np.full(HPAV.num_carriers, 2)
    great = np.full(HPAV.num_carriers, 40.0)
    awful = np.full(HPAV.num_carriers, -10.0)
    assert phy.pb_error_probability(great, bits) == pytest.approx(5e-4)
    assert phy.pb_error_probability(awful, bits) <= 0.95


def test_impulsive_noise_raises_pb_error():
    bits = np.full(HPAV.num_carriers, 4)
    snr = np.full(HPAV.num_carriers, 18.0)
    quiet = phy.pb_error_probability(snr, bits, impulsive_rate_hz=0.0)
    noisy = phy.pb_error_probability(snr, bits, impulsive_rate_hz=50.0)
    assert noisy > quiet


def test_ble_from_snr_shape_and_monotonicity():
    snr = np.tile(np.linspace(5, 30, HPAV.num_carriers)[:, None], (1, 6))
    snr[:, 3] += 6.0  # one quiet slot
    ble = phy.ble_from_snr(snr, HPAV)
    assert ble.shape == (6,)
    assert ble[3] == ble.max()


def test_ble_from_snr_validates_carrier_count():
    with pytest.raises(ValueError):
        phy.ble_from_snr(np.zeros((10, 6)), HPAV)


def test_max_snr_reaches_nominal_ble():
    snr = np.full((HPAV.num_carriers, 6), 45.0)
    ble = phy.ble_from_snr(snr, HPAV, pb_err=0.0)
    assert ble[0] / MBPS == pytest.approx(150.0, abs=2.0)


def test_robo_loss_low_for_decent_links_high_for_dead_ones():
    good = np.full((HPAV.num_carriers, 6), 15.0)
    dead = np.full((HPAV.num_carriers, 6), -25.0)
    assert phy.robo_loss_probability(good, HPAV) < 1e-3
    assert phy.robo_loss_probability(dead, HPAV) > 0.5


def test_robo_loss_has_residual_floor():
    """§8.1: even perfect links lose ~1e-4 of broadcasts."""
    perfect = np.full((HPAV.num_carriers, 6), 40.0)
    assert phy.robo_loss_probability(perfect, HPAV) >= 1e-4
