"""Table 3 policy engine."""

import pytest

from repro.core.classification import LinkQuality
from repro.core.guidelines import (
    LinkState,
    audit_schedule,
    recommend,
)
from repro.core.probing import ProbeSchedule
from repro.units import MBPS


def test_recommend_enforces_probe_size():
    rec = recommend(LinkState(ble_fwd_bps=120 * MBPS))
    assert rec.schedule.payload_bytes > 520
    assert rec.unicast
    assert rec.average_over_slots
    assert rec.metrics == ("BLE", "PBerr")


def test_recommend_scales_interval_with_quality():
    bad = recommend(LinkState(ble_fwd_bps=30 * MBPS))
    good = recommend(LinkState(ble_fwd_bps=130 * MBPS))
    assert good.schedule.interval_s > bad.schedule.interval_s


def test_recommend_bursts_under_contention():
    rec = recommend(LinkState(ble_fwd_bps=80 * MBPS, contended=True))
    assert rec.schedule.burst_packets >= 20
    assert any("burst" in n or "aggregation" in n for n in rec.notes)


def test_recommend_flags_asymmetric_links():
    rec = recommend(LinkState(ble_fwd_bps=100 * MBPS,
                              ble_rev_bps=40 * MBPS))
    assert any("asymmetric" in n for n in rec.notes)


def test_audit_passes_compliant_setup():
    schedule = ProbeSchedule(interval_s=80.0, payload_bytes=1500)
    violations = audit_schedule(
        schedule, unicast=True, averages_over_slots=True,
        probes_both_directions=True, link_quality=LinkQuality.GOOD)
    assert violations == []


def test_audit_catches_every_violation():
    schedule = ProbeSchedule(interval_s=60.0, payload_bytes=400)
    violations = audit_schedule(
        schedule, unicast=False, averages_over_slots=False,
        probes_both_directions=False, link_quality=LinkQuality.BAD,
        contended=True)
    names = {v.guideline for v in violations}
    assert names == {
        "unicast probing only",
        "shortest time-scale",
        "size of probes",
        "frequency of probes",
        "burstiness of probes",
        "asymmetry in probing",
    }


def test_audit_frequency_rules_are_quality_aware():
    fast = ProbeSchedule(interval_s=5.0, payload_bytes=1500)
    slow = ProbeSchedule(interval_s=60.0, payload_bytes=1500)
    v_good = audit_schedule(fast, unicast=True, averages_over_slots=True,
                            probes_both_directions=True,
                            link_quality=LinkQuality.GOOD)
    assert any(v.guideline == "frequency of probes" for v in v_good)
    v_bad = audit_schedule(slow, unicast=True, averages_over_slots=True,
                           probes_both_directions=True,
                           link_quality=LinkQuality.BAD)
    assert any(v.guideline == "frequency of probes" for v in v_bad)
    v_ok = audit_schedule(slow, unicast=True, averages_over_slots=True,
                          probes_both_directions=True,
                          link_quality=LinkQuality.GOOD)
    assert not any(v.guideline == "frequency of probes" for v in v_ok)
