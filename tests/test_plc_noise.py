"""Noise-trace synthesis and analysis (ref [9] machinery)."""

import numpy as np
import pytest

from repro.plc.noise import (
    NoiseTrace,
    classify_noise_source,
    day_night_contrast_db,
    slot_profile_signature,
    synthesize_noise_trace,
)
from repro.sim.clock import MainsClock
from repro.sim.random import RandomStreams


def _trace(testbed, station=4, hour=14.0, duration=30.0):
    outlet = testbed.sites[station].outlet_id
    t0 = MainsClock.at(day=2, hour=hour)
    return synthesize_noise_trace(testbed.load, outlet, t0, duration,
                                  interval=1.0, streams=RandomStreams(8))


def test_trace_shape_and_validation(testbed):
    trace = _trace(testbed)
    assert trace.psd_dbm_hz.shape == (30, 6)
    assert len(trace.times) == 30
    with pytest.raises(ValueError):
        synthesize_noise_trace(testbed.load,
                               testbed.sites[4].outlet_id, 0.0, 0.0, 1.0,
                               RandomStreams(8))


def test_noisy_outlet_louder_than_quiet_one(testbed):
    noisy = _trace(testbed, station=4)    # lab equipment next door
    quiet = _trace(testbed, station=14)
    assert noisy.mean_level_dbm_hz() > quiet.mean_level_dbm_hz() + 3.0


def test_mains_synchronous_swing_present(testbed):
    trace = _trace(testbed, station=4)
    assert trace.slot_swing_db() > 0.5


def test_impulses_generated_near_impulsive_appliances(testbed):
    trace = _trace(testbed, station=4, duration=120.0)
    assert len(trace.impulses) > 0
    for imp in trace.impulses:
        assert 0 < imp.duration_s < 1e-3
        assert 10.0 < imp.amplitude_db < 45.0
    # Impulse draws are reproducible (hashed stream).
    again = _trace(testbed, station=4, duration=120.0)
    assert [i.time for i in again.impulses] == \
        [i.time for i in trace.impulses]


def test_signature_normalised(testbed):
    trace = _trace(testbed, station=4)
    sig = slot_profile_signature(trace)
    assert sig.shape == (6,)
    assert np.isclose(sig.mean(), 1.0)


def test_classifier_recovers_a_dominant_source():
    from repro.powergrid.appliances import APPLIANCE_CATALOG
    fluorescent = APPLIANCE_CATALOG[
        "fluorescent_lighting"].slot_noise_multipliers()
    name, distance = classify_noise_source(fluorescent)
    assert name == "fluorescent_lighting"
    assert distance == pytest.approx(0.0, abs=1e-12)


def test_classifier_validation():
    with pytest.raises(ValueError):
        classify_noise_source([])
    with pytest.raises(ValueError):
        classify_noise_source([1.0, 1.0])  # no 2-slot profiles in catalog


def test_day_night_contrast_positive(testbed):
    day = _trace(testbed, station=4, hour=14.0)
    night = _trace(testbed, station=4, hour=23.5)
    assert day_night_contrast_db(day, night) > 0.0
