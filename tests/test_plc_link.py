"""PlcLink measurement facade."""

import numpy as np
import pytest

from repro.units import MBPS


def test_sample_bundles_consistent_metrics(testbed, t_work):
    link = testbed.plc_link(0, 1)
    sample = link.sample(t_work)
    assert sample.ble_per_slot_bps.shape == (6,)
    assert sample.avg_ble_bps == pytest.approx(
        float(np.mean(sample.ble_per_slot_bps)))
    assert 0.0 <= sample.pb_err <= 1.0
    assert sample.throughput_bps >= 0.0
    assert sample.avg_ble_mbps == sample.avg_ble_bps / MBPS


def test_throughput_below_ble_over_1p6(testbed, t_work):
    """BLE ≈ 1.7 T (Fig. 15): throughput sits well under BLE."""
    for (i, j) in [(0, 1), (2, 3), (13, 14)]:
        link = testbed.plc_link(i, j)
        thr = link.throughput_bps(t_work, measured=False)
        ble = link.avg_ble_bps(t_work)
        if ble > 1 * MBPS:
            assert thr < ble / 1.6


def test_measured_throughput_adds_noise(testbed, t_work):
    link = testbed.plc_link(0, 1)
    clean = link.throughput_bps(t_work, measured=False)
    noisy = [link.throughput_bps(t_work) for _ in range(10)]
    assert np.std(noisy) > 0
    assert np.mean(noisy) == pytest.approx(clean, rel=0.05)


def test_u_etx_at_least_one(testbed, t_work):
    for (i, j) in [(0, 1), (11, 4)]:
        link = testbed.plc_link(i, j)
        etx = link.u_etx(t_work)
        assert etx >= 1.0
        assert link.u_etx_std(t_work) >= 0.0


def test_bad_link_has_higher_u_etx(testbed, t_work):
    good = testbed.plc_link(13, 14)
    bad = testbed.plc_link(11, 4)
    assert bad.u_etx(t_work) > good.u_etx(t_work)


def test_broadcast_loss_is_tiny_for_usable_links(testbed, t_work):
    """§8.1: broadcast loss carries no quality signal for decent links."""
    good = testbed.plc_link(13, 14).broadcast_loss_probability(t_work)
    mid = testbed.plc_link(0, 3).broadcast_loss_probability(t_work)
    assert good < 1e-3
    assert mid < 1e-2


def test_is_connected_threshold(testbed, t_work):
    assert testbed.plc_link(0, 1).is_connected(t_work)
    assert not testbed.plc_link(0, 1).is_connected(
        t_work, min_throughput_bps=1e9)
