"""Benchmark table formatting."""

from repro.analysis.reporting import format_series, format_table


def test_format_table_aligns_columns():
    out = format_table(["name", "value"],
                       [["alpha", 1.0], ["beta-long", 123.456]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    # All rows share the header's column offsets.
    value_col = lines[1].index("value")
    assert lines[3][value_col:].strip() == "1.0"


def test_format_table_number_rendering():
    out = format_table(["v"], [[1234.5678], [12.345], [0.00123],
                               [float("nan")]])
    assert "1235" in out or "1234" in out
    assert "12.3" in out
    assert "0.00123" in out
    assert "nan" in out


def test_format_series_thins_long_series():
    xs = list(range(1000))
    ys = [2 * x for x in xs]
    out = format_series("S", xs, ys, max_points=10)
    # Thinned: far fewer than 1000 data lines.
    assert len(out.splitlines()) < 40
    assert out.splitlines()[0] == "S"


def test_format_table_handles_strings_and_ints():
    out = format_table(["a", "b"], [["x", 3], ["y", 4]])
    assert "x" in out and "3" in out
