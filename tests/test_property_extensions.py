"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.interference import AirtimeReport, available_bandwidth_bps
from repro.core.two_metric_model import TwoMetricLinkModel, TwoMetricParameters
from repro.hybrid.schedulers import CapacityProportionalScheduler
from repro.plc import mm_wire
from repro.plc.beacon import BeaconSchedule
from repro.plc.tdma import TdmaScheduler
from repro.sim.random import RandomStreams

pytestmark = pytest.mark.slow
from repro.transport.tcp import padhye_throughput_bps
from repro.units import BEACON_PERIOD


# --- MM wire format: fuzz the decoder -------------------------------------------


@given(st.binary(max_size=64))
def test_mm_decoder_never_crashes_on_garbage(blob):
    from repro.plc.mm_wire import MmDecodeError, decode_mm
    try:
        decode_mm(blob)
    except MmDecodeError:
        pass  # rejecting garbage is the job; crashing is not


@given(st.floats(min_value=0, max_value=500),
       st.floats(min_value=0, max_value=500))
def test_nw_info_rates_always_roundtrip_within_one_mbps(tx, rx):
    got_tx, got_rx = mm_wire.roundtrip_rates("x", tx, rx)
    assert abs(got_tx - min(tx, 255)) <= 0.5
    assert abs(got_rx - min(rx, 255)) <= 0.5


@given(st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=0, max_value=2**31))
def test_amp_stat_pb_err_is_probability(received, errored):
    if errored > received:
        received, errored = errored, received
    frame = mm_wire.encode_amp_stat_cnf(received, errored)
    _, _, pb_err = mm_wire.decode_amp_stat_cnf(frame)
    assert 0.0 <= pb_err <= 1.0


# --- TDMA / beacon: allocation algebra --------------------------------------------


@given(st.dictionaries(st.sampled_from(["a", "b", "c", "d"]),
                       st.floats(min_value=1e5, max_value=1e9),
                       min_size=1, max_size=4))
def test_tdma_allocations_tile_their_budget(demands):
    scheduler = TdmaScheduler(schedulable_fraction=0.8)
    allocations = scheduler.allocate(demands)
    total = sum(a.duration_s for a in allocations)
    assert total <= 0.8 * BEACON_PERIOD * (1 + 1e-9)
    assert np.isclose(total, 0.8 * BEACON_PERIOD)
    # Shares follow demands.
    by_name = {a.flow_name: a.duration_s for a in allocations}
    names = sorted(demands)
    for a, b in zip(names, names[1:]):
        if demands[a] > demands[b]:
            assert by_name[a] >= by_name[b] - 1e-12


@given(st.dictionaries(st.sampled_from(["a", "b", "c"]),
                       st.floats(min_value=1e5, max_value=1e8),
                       min_size=1, max_size=3))
def test_beacon_schedule_from_any_allocation_tiles(demands):
    allocations = TdmaScheduler(
        schedulable_fraction=0.7).allocate(demands)
    schedule = BeaconSchedule.with_allocations(allocations)
    schedule.validate()  # no gaps, no overlaps, fills the period
    assert 0.0 <= schedule.csma_fraction() <= 1.0
    assert schedule.cfp_fraction() <= 0.7 + 1e-9


# --- interference algebra -------------------------------------------------------------


@given(st.floats(min_value=0, max_value=1.0),
       st.floats(min_value=0, max_value=1.0),
       st.floats(min_value=0, max_value=1e9))
def test_available_bandwidth_bounded(own, foreign, capacity):
    report = AirtimeReport(window_s=1.0, own_airtime_s=own,
                           foreign_airtime_s=foreign)
    bw = available_bandwidth_bps(capacity, report)
    assert 0.0 <= bw <= capacity


# --- two-metric model --------------------------------------------------------------------


@given(st.floats(min_value=1e6, max_value=2e8),
       st.floats(min_value=0.0, max_value=0.2),
       st.floats(min_value=0.0, max_value=0.5))
def test_two_metric_model_outputs_always_sane(mean_ble, sigma, pb):
    params = TwoMetricParameters(
        slot_ble_bps=tuple([mean_ble] * 6), jitter_sigma_rel=sigma,
        jitter_hold_s=1.0, pb_err_base=pb, pb_err_spread=0.3)
    model = TwoMetricLinkModel(params, RandomStreams(9), name="prop")
    for t in (0.0, 13.7, 999.9):
        assert (model.ble_per_slot_bps(t) >= 0).all()
        assert 0.0 <= model.pb_err(t) <= 0.95
        assert model.throughput_bps(t, measured=False) >= 0.0
        assert model.u_etx(t) >= 1.0


# --- transport --------------------------------------------------------------------------------


@given(st.floats(min_value=1e-3, max_value=1.0),
       st.floats(min_value=1e-5, max_value=0.4))
def test_padhye_monotonicity(rtt, loss):
    base = padhye_throughput_bps(1448, rtt, loss)
    assert base > 0
    assert padhye_throughput_bps(1448, rtt * 2, loss) < base
    assert padhye_throughput_bps(1448, rtt, min(loss * 2, 0.5)) <= base


# --- schedulers under adversarial capacities ----------------------------------------------------


@given(st.lists(st.floats(min_value=1e3, max_value=1e9), min_size=2,
                max_size=2))
def test_proportional_split_matches_weights(caps):
    capacities = {"plc": caps[0], "wifi": caps[1]}
    split = CapacityProportionalScheduler(
        RandomStreams(5).get("p")).split(capacities, 1000)
    assert sum(split.values()) == 1000
    expected_wifi = 1000 * caps[1] / (caps[0] + caps[1])
    assert abs(split["wifi"] - expected_wifi) <= 1.0
