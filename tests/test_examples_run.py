"""Every example script must run cleanly end to end.

The examples are the library's front door; a broken example is a broken
deliverable. Each ``main()`` is imported and executed (fast paths only —
the scripts themselves keep their workloads small).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3, "the deliverable requires >= 3 examples"
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    assert hasattr(module, "main"), f"{name}.py must define main()"
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 50, f"{name}.py should print its findings"
