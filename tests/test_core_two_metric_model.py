"""The two-metric abstraction (§2.2's modeling claim)."""

import numpy as np
import pytest

from repro.core.two_metric_model import (
    TwoMetricLinkModel,
    TwoMetricParameters,
    compare_models,
    fit_two_metric_model,
)
from repro.sim.random import RandomStreams
from repro.units import MBPS


def _params(mean_mbps=100.0, sigma=0.01, hold=2.0, pb=0.01, spread=0.3):
    slots = tuple(mean_mbps * MBPS * f for f in
                  (0.9, 0.95, 1.0, 1.05, 1.05, 1.05))
    return TwoMetricParameters(slot_ble_bps=slots, jitter_sigma_rel=sigma,
                               jitter_hold_s=hold, pb_err_base=pb,
                               pb_err_spread=spread)


def test_parameter_validation():
    with pytest.raises(ValueError):
        TwoMetricParameters((), 0.01, 1.0, 0.01, 0.1)
    with pytest.raises(ValueError):
        TwoMetricParameters((1e6,), 0.01, 1.0, 1.0, 0.1)
    with pytest.raises(ValueError):
        TwoMetricParameters((1e6,), 0.01, 0.0, 0.1, 0.1)
    with pytest.raises(ValueError):
        TwoMetricParameters((-1e6,), 0.01, 1.0, 0.1, 0.1)


def test_model_exposes_link_surface(streams):
    model = TwoMetricLinkModel(_params(), streams)
    t = 100.0
    per_slot = model.ble_per_slot_bps(t)
    assert per_slot.shape == (6,)
    assert model.avg_ble_bps(t) == pytest.approx(float(per_slot.mean()))
    assert 0.0 <= model.pb_err(t) <= 0.95
    assert model.throughput_bps(t, measured=False) > 0
    assert model.u_etx(t) >= 1.0
    assert model.is_connected(t)


def test_model_preserves_throughput_law(streams):
    """The abstraction obeys the same BLE ≈ 1.7 T law by construction."""
    model = TwoMetricLinkModel(_params(sigma=0.0, pb=0.001, spread=0.0),
                               streams)
    ratio = model.avg_ble_bps(0.0) / model.throughput_bps(
        0.0, measured=False)
    assert ratio == pytest.approx(1.7, rel=0.05)


def test_jitter_is_replayable(streams):
    a = TwoMetricLinkModel(_params(sigma=0.05), RandomStreams(3), name="x")
    b = TwoMetricLinkModel(_params(sigma=0.05), RandomStreams(3), name="x")
    for t in (0.0, 1.3, 7.7, 100.1):
        assert a.avg_ble_bps(t) == b.avg_ble_bps(t)
        assert a.pb_err(t) == b.pb_err(t)


def test_jitter_scales_with_sigma(streams):
    quiet = TwoMetricLinkModel(_params(sigma=0.005), streams, name="q")
    noisy = TwoMetricLinkModel(_params(sigma=0.10), streams, name="n")
    ts = np.arange(0, 60, 0.5)
    std_q = np.std([quiet.avg_ble_bps(float(t)) for t in ts])
    std_n = np.std([noisy.avg_ble_bps(float(t)) for t in ts])
    assert std_n > 4 * std_q


def test_fit_recovers_slot_structure(testbed, t_night):
    link = testbed.plc_link(0, 4)
    params = fit_two_metric_model(link, t_night, duration=30.0)
    direct = link.ble_per_slot_bps(t_night)
    assert len(params.slot_ble_bps) == 6
    # Slot ordering preserved (noisy slots stay the weak ones).
    assert np.argmin(params.slot_ble_bps) == int(np.argmin(direct))
    assert params.mean_ble_bps == pytest.approx(
        link.avg_ble_bps(t_night), rel=0.15)


def test_fitted_model_reproduces_physical_statistics(testbed, t_night):
    """§2.2's claim, end to end: fit on one window, compare on another."""
    link = testbed.plc_link(2, 7)
    params = fit_two_metric_model(link, t_night, duration=45.0)
    model = TwoMetricLinkModel(params, testbed.streams, name="fit-2-7")
    stats = compare_models(link, model, t_night + 60.0, duration=45.0)
    assert stats["synthetic_mean_bps"] == pytest.approx(
        stats["physical_mean_bps"], rel=0.15)
    assert stats["synthetic_u_etx"] == pytest.approx(
        stats["physical_u_etx"], rel=0.2)


def test_bad_link_fit_keeps_variability(testbed, t_night):
    link = testbed.plc_link(11, 4)
    params = fit_two_metric_model(link, t_night, duration=45.0)
    good_params = fit_two_metric_model(testbed.plc_link(13, 14), t_night,
                                       duration=45.0)
    # Quality/variability correlation survives the abstraction (§6.2).
    assert params.jitter_sigma_rel > 2 * good_params.jitter_sigma_rel
    assert params.mean_ble_bps < good_params.mean_ble_bps
