"""``repro bench`` CLI: happy paths on the cheap meta benchmark, and
every documented error path (unknown name, missing baseline, schema
version mismatch, unwritable outputs)."""

from __future__ import annotations

import json

import pytest

from repro.bench.schema import (
    BENCH_SCHEMA_VERSION,
    BenchDocument,
    BenchResult,
    Environment,
    write_document,
)
from repro.cli import main


def _bench_doc(tmp_path, name="meta.noop", samples=(0.001, 0.001)):
    doc = BenchDocument(environment=Environment.capture())
    doc.add(BenchResult(name=name, samples_s=samples))
    path = tmp_path / "BENCH.json"
    write_document(path, doc)
    return path


# --- run ----------------------------------------------------------------------


def test_bench_run_writes_document_and_trajectory(tmp_path, capsys):
    out = tmp_path / "BENCH.json"
    trajectory = tmp_path / "trajectory.jsonl"
    rc = main(["bench", "run", "meta.noop", "--out", str(out),
               "--trajectory", str(trajectory)])
    captured = capsys.readouterr()
    assert rc == 0
    assert "meta.noop: min" in captured.out
    assert "smoke floors: all hold" in captured.out
    data = json.loads(out.read_text())
    assert data["format"] == "repro-bench"
    assert data["version"] == BENCH_SCHEMA_VERSION
    assert "meta.noop" in data["results"]
    assert trajectory.read_text().count("\n") == 1


def test_bench_run_unknown_name(capsys):
    rc = main(["bench", "run", "meta.nope"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unknown benchmark 'meta.nope'" in err
    assert "did you mean meta.noop" in err


def test_bench_run_requires_names_or_all(capsys):
    rc = main(["bench", "run"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "name at least one benchmark or pass --all" in err


def test_bench_run_rejects_names_plus_all(capsys):
    rc = main(["bench", "run", "meta.noop", "--all"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "not both" in err


def test_bench_run_unwritable_out(capsys):
    rc = main(["bench", "run", "meta.noop",
               "--out", "/nonexistent-dir/deep/BENCH.json"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "cannot write" in err


# --- compare ------------------------------------------------------------------


def test_bench_compare_self_passes(tmp_path, capsys):
    path = _bench_doc(tmp_path)
    rc = main(["bench", "compare", str(path), str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "gate: OK" in out


def test_bench_compare_live_candidate_against_baseline(tmp_path, capsys):
    path = _bench_doc(tmp_path, samples=(10.0, 10.0))  # generous floor
    rc = main(["bench", "compare", str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "PASS" in out and "meta.noop" in out


def test_bench_compare_fails_on_regression(tmp_path, capsys):
    baseline = _bench_doc(tmp_path, name="stub.gone",
                          samples=(0.1, 0.1, 0.1))
    candidate = tmp_path / "cand.json"
    doc = BenchDocument(environment=Environment.capture())
    doc.add(BenchResult(name="stub.gone", samples_s=(0.3, 0.3, 0.3)))
    write_document(candidate, doc)
    rc = main(["bench", "compare", str(baseline), str(candidate)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAIL" in out and "gate: FAIL" in out


def test_bench_compare_missing_baseline(capsys):
    rc = main(["bench", "compare", "/no/such/BENCH.json"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "cannot read baseline" in err


def test_bench_compare_baseline_directory_resolution(tmp_path, capsys):
    _bench_doc(tmp_path, samples=(10.0, 10.0))
    rc = main(["bench", "compare", str(tmp_path)])
    assert rc == 0
    assert "gate: OK" in capsys.readouterr().out


def test_bench_compare_schema_version_mismatch(tmp_path, capsys):
    path = _bench_doc(tmp_path)
    data = json.loads(path.read_text())
    data["version"] = BENCH_SCHEMA_VERSION + 41
    path.write_text(json.dumps(data))
    rc = main(["bench", "compare", str(path)])
    err = capsys.readouterr().err
    assert rc == 1
    assert "schema version mismatch" in err


def test_bench_compare_rejects_legacy_ad_hoc_baseline(tmp_path, capsys):
    path = tmp_path / "BENCH_medium.json"
    path.write_text(json.dumps(
        {"plc": {"scalar_s": 18.0, "batch_s": 1.5}}))
    rc = main(["bench", "compare", str(path)])
    err = capsys.readouterr().err
    assert rc == 1
    assert "not a repro-bench document" in err


def test_bench_compare_candidate_errors_are_reported(tmp_path, capsys):
    baseline = _bench_doc(tmp_path)
    rc = main(["bench", "compare", str(baseline), "/no/such/cand.json"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "cannot read candidate" in err


# --- report / list ------------------------------------------------------------


def test_bench_report_prints_results_and_environment(tmp_path, capsys):
    path = _bench_doc(tmp_path)
    rc = main(["bench", "report", str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "min-of-repeats" in out
    assert "meta.noop" in out
    assert "environment: python" in out


def test_bench_report_trajectory_view(tmp_path, capsys):
    out_doc = tmp_path / "BENCH.json"
    trajectory = tmp_path / "trajectory.jsonl"
    assert main(["bench", "run", "meta.noop", "--quiet",
                 "--out", str(out_doc),
                 "--trajectory", str(trajectory)]) == 0
    assert main(["bench", "run", "meta.noop", "--quiet",
                 "--trajectory", str(trajectory)]) == 0
    capsys.readouterr()
    rc = main(["bench", "report", str(trajectory), "--trajectory"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "2 run(s)" in out
    assert "last/first" in out


def test_bench_report_rejects_non_bench_file(tmp_path, capsys):
    path = tmp_path / "junk.json"
    path.write_text("not json at all")
    rc = main(["bench", "report", str(path)])
    err = capsys.readouterr().err
    assert rc == 1
    assert "not a JSON document" in err


def test_bench_report_missing_file(capsys):
    rc = main(["bench", "report", "/no/such/BENCH.json"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "cannot read" in err


def test_bench_report_empty_trajectory(tmp_path, capsys):
    rc = main(["bench", "report", str(tmp_path / "t.jsonl"),
               "--trajectory"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "no trajectory records" in err


def test_bench_list_shows_registry_and_manifest(capsys):
    rc = main(["bench", "list"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "meta.noop" in out
    assert "test_bench_harness" in out
    assert "runner.nine_flows" in out


def test_bench_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["bench"])
