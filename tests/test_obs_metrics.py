"""The observability core: registry semantics, exact merges, profiling.

The merge-exactness contract (associative, commutative, bit-for-bit) is
what lets ``CampaignStats`` fold worker registries in any completion
order and still report one canonical aggregate; the tests here pin the
mechanism, ``tests/test_campaign_properties.py`` pins the law over
random operation streams.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.obs import (
    FakeClock,
    Histogram,
    MetricsRegistry,
    Profiler,
    SystemClock,
    global_registry,
    reset_global_registry,
)
from repro.obs.profile import STAGE_EDGES

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


# --- counters -----------------------------------------------------------------


def test_counters_sum_and_preserve_int_type():
    reg = MetricsRegistry()
    reg.inc("quanta")
    reg.inc("quanta", 3)
    assert reg.counter("quanta") == 4
    assert isinstance(reg.counter("quanta"), int)
    reg.inc("airtime", 0.5)
    assert isinstance(reg.counter("airtime"), float)


def test_counters_with_prefix_strips_prefix():
    reg = MetricsRegistry()
    reg.inc("runner.domain_airtime.plc:B1", 0.25)
    reg.inc("runner.domain_airtime.wifi:floor", 1.0)
    reg.inc("runner.quanta", 7)
    assert reg.counters_with_prefix("runner.domain_airtime.") == {
        "plc:B1": 0.25, "wifi:floor": 1.0}


def test_set_counter_assigns_but_merge_still_sums():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.set_counter("wall_seconds", 2.0)
    a.set_counter("wall_seconds", 3.0)  # overwrite, not accumulate
    b.set_counter("wall_seconds", 1.5)
    a.merge(b)
    assert a.counter("wall_seconds") == 4.5


# --- gauges -------------------------------------------------------------------


def test_watermark_keeps_lexicographic_max():
    reg = MetricsRegistry()
    reg.watermark("peak", 0.8, sim_time=10.0)
    reg.watermark("peak", 0.5, sim_time=99.0)  # lower value loses
    assert reg.gauge("peak") == 0.8
    reg.watermark("peak", 0.8, sim_time=20.0)  # tie: later sim time wins
    assert reg.to_dict()["gauges"]["peak"] == [0.8, 20.0]
    reg.watermark("peak", 1.2, sim_time=1.0)
    assert reg.gauge("peak") == 1.2


def test_gauge_default_when_unset():
    reg = MetricsRegistry()
    assert reg.gauge("missing") == 0.0
    assert reg.gauge("missing", None) is None


# --- histograms ---------------------------------------------------------------


def test_histogram_edges_must_be_strictly_increasing():
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram([1.0, 1.0, 2.0])
    with pytest.raises(ValueError, match="at least one edge"):
        Histogram([])


def test_histogram_buckets_and_overflow():
    hist = Histogram([1.0, 10.0])
    for value in (0.5, 1.0, 5.0, 100.0):
        hist.observe(value)
    # <=1, (1,10], >10 — boundary values land in the lower bucket.
    assert hist.counts == [2, 1, 1]
    assert hist.total == 4
    assert hist.min == 0.5 and hist.max == 100.0


def test_histogram_merge_requires_equal_edges():
    a, b = Histogram([1.0]), Histogram([2.0])
    with pytest.raises(ValueError, match="different edges"):
        a.merge(b)


def test_histogram_merge_adds_counts_exactly():
    a, b = Histogram([1.0, 10.0]), Histogram([1.0, 10.0])
    a.observe(0.5)
    b.observe(5.0)
    b.observe(50.0)
    a.merge(b)
    assert a.counts == [1, 1, 1]
    assert a.total == 3
    assert a.sum == 55.5
    assert a.min == 0.5 and a.max == 50.0


# --- registry merge / serialisation -------------------------------------------


def _sample_registry(offset: float) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("n", 2)
    reg.inc("x", offset)
    reg.watermark("peak", offset, sim_time=offset * 2)
    reg.observe("lat", offset, edges=(1.0, 10.0))
    return reg


def test_merge_is_commutative_and_associative():
    regs = [_sample_registry(v) for v in (0.5, 5.0, 50.0)]

    def folded(order):
        acc = MetricsRegistry()
        for k in order:
            acc.merge(_sample_registry((0.5, 5.0, 50.0)[k]))
        return acc.to_dict()

    reference = folded((0, 1, 2))
    assert folded((2, 1, 0)) == reference
    assert folded((1, 2, 0)) == reference
    assert regs[0].to_dict() != reference  # merge actually did something


def test_roundtrip_through_dict_is_lossless():
    reg = _sample_registry(5.0)
    clone = MetricsRegistry.from_dict(reg.to_dict())
    assert clone.to_dict() == reg.to_dict()


def test_global_registry_reset():
    reset_global_registry()
    global_registry().inc("tests.ping")
    assert global_registry().counter("tests.ping") == 1
    reset_global_registry()
    assert global_registry().counter("tests.ping") == 0


# --- clock + profiler ---------------------------------------------------------


def test_fake_clock_advances_and_records_sleeps():
    clock = FakeClock(start=100.0)
    assert clock.now() == 100.0
    clock.sleep(2.5)
    assert clock.now() == 102.5
    clock.advance(1.0)
    assert clock.now() == 103.5
    assert clock.sleeps == [2.5]


def test_system_clock_is_monotonic_nonblocking():
    clock = SystemClock()
    a = clock.now()
    clock.sleep(0.0)
    assert clock.now() >= a


def test_profiler_accumulates_stage_time_into_registry():
    reg, clock = MetricsRegistry(), FakeClock()
    profiler = Profiler(metrics=reg, clock=clock)
    for _ in range(3):
        with profiler.stage("capacity"):
            clock.advance(0.05)
    assert reg.counter("profile.capacity.calls") == 3
    assert reg.counter("profile.capacity.seconds") == pytest.approx(0.15)
    hist = reg.histogram("profile.capacity.latency")
    assert hist.total == 3 and hist.edges == STAGE_EDGES
    summary = profiler.summary()
    assert summary["capacity"]["mean_s"] == pytest.approx(0.05)


def test_disabled_profiler_records_nothing():
    reg = MetricsRegistry()
    profiler = Profiler(metrics=reg, enabled=False)
    with profiler.stage("anything"):
        pass
    assert reg.to_dict() == {"counters": {}, "gauges": {},
                             "histograms": {}}


def test_profiler_times_raising_stages():
    reg, clock = MetricsRegistry(), FakeClock()
    profiler = Profiler(metrics=reg, clock=clock)
    with pytest.raises(RuntimeError):
        with profiler.stage("boom"):
            clock.advance(0.2)
            raise RuntimeError("boom")
    assert reg.counter("profile.boom.seconds") == pytest.approx(0.2)


# --- the clock-discipline static scan -----------------------------------------


def test_no_wall_clock_reads_outside_obs():
    """``time.time()`` / ``time.perf_counter()`` are banned in ``src``
    outside ``repro.obs`` — every component reads epochs through an
    injected :class:`~repro.obs.clock.Clock` so tests can substitute
    :class:`~repro.obs.clock.FakeClock` and no code mixes clock domains.
    (CI enforces the same rule via ruff's banned-api lint.)"""
    banned = re.compile(r"\btime\.(time|perf_counter|monotonic)\s*\(")
    offenders = []
    for path in SRC.rglob("*.py"):
        if (SRC / "obs") in path.parents:
            continue
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            code = line.split("#", 1)[0]
            if banned.search(code):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}")
    assert not offenders, (
        "wall-clock reads outside repro.obs (inject a Clock instead): "
        + ", ".join(offenders))
