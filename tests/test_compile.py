"""The compile plane's contracts (``repro.compile``).

The core promise — stated in the module docstring and relied on by every
task executor — is that a cache checkout is **bit-identical** to a
from-scratch build: the compiled template shares only deterministic
state (load memoisation, channel caches), while each
:meth:`CompiledTestbed.instantiate` view gets private monotonic RNG
streams.  These tests pin that promise, the content addressing, and the
cache/metrics accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import ExperimentSpec
from repro.compile import (
    COMPILE_CACHE_ENTRIES,
    CompiledTestbed,
    checkout_testbed,
    compile_cache,
    compile_cache_disabled,
    compile_testbed,
    compiled_testbed,
    precompile_specs,
    reset_compile_cache,
    testbed_fingerprint as fingerprint_of,  # pytest collects `test*` names
)
from repro.obs import MetricsRegistry
from repro.testbed.builder import build_preset_testbed
from repro.testbed.experiments import measure_pair


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts from an empty process-wide cache (stats are
    cumulative across the process, so tests compare deltas)."""
    reset_compile_cache()
    yield
    reset_compile_cache()


def _survey(testbed, src=0, dst=1, t=1000.0):
    return measure_pair(testbed, src, dst, t, duration=2.0,
                        report_interval=0.5)


def _series(testbed, src=0, dst=1, t=1000.0):
    ts = np.linspace(t, t + 30.0, 16)
    return {medium: testbed.link(medium, src, dst)
            .sample_series(ts, measured=True).data
            for medium in ("plc", "wifi")}


# --- the bit-identity contract ------------------------------------------------


def test_checkout_is_bit_identical_to_scratch_build():
    scratch = build_preset_testbed("mini3", seed=7)
    checkout = checkout_testbed("mini3", seed=7)
    assert _survey(checkout) == _survey(scratch)
    scratch2 = build_preset_testbed("mini3", seed=7)
    checkout2 = checkout_testbed("mini3", seed=7)
    # Evaluate each world once: measured sampling consumes the link's
    # monotonic noise stream, so a second pass would read further values.
    reference, observed = _series(scratch2), _series(checkout2)
    for medium in reference:
        assert np.array_equal(observed[medium], reference[medium]), medium


def test_second_checkout_matches_the_first():
    """Instantiated views never leak RNG state back into the template:
    the Nth checkout behaves exactly like the 1st."""
    first = _survey(checkout_testbed("mini3", seed=11))
    second = _survey(checkout_testbed("mini3", seed=11))
    assert first == second


def test_warm_links_never_moves_a_result_byte():
    cold = _survey(build_preset_testbed("mini3", seed=13))
    compiled = compiled_testbed("mini3", seed=13)
    resolved = compiled.warm_links()
    assert resolved > 0
    assert _survey(compiled.instantiate()) == cold


def test_cache_disabled_produces_the_same_bytes():
    cached = _survey(checkout_testbed("mini3", seed=7))
    with compile_cache_disabled():
        bypassed = _survey(checkout_testbed("mini3", seed=7))
    assert bypassed == cached


# --- content addressing -------------------------------------------------------


def test_fingerprint_is_stable_and_preset_sensitive():
    assert fingerprint_of("mini3") == fingerprint_of("mini3")
    assert fingerprint_of("mini3") != fingerprint_of("office")
    assert len(fingerprint_of("mini3")) == 64


def test_cache_key_carries_the_content_address():
    compiled = compiled_testbed("mini3", seed=7)
    assert isinstance(compiled, CompiledTestbed)
    assert compiled.cache_key == (
        f"mini3/s7/{fingerprint_of('mini3')[:12]}")


def test_distinct_seeds_are_distinct_worlds():
    a = compiled_testbed("mini3", seed=7)
    b = compiled_testbed("mini3", seed=8)
    assert a is not b
    assert a.fingerprint == b.fingerprint  # content, not seed, hashed
    assert a.cache_key != b.cache_key


# --- cache and metrics accounting ---------------------------------------------


def test_one_build_per_world_then_hits():
    reg = MetricsRegistry()
    a = compiled_testbed("mini3", seed=7, metrics=reg)
    b = compiled_testbed("mini3", seed=7, metrics=reg)
    assert a is b  # served by reference, not rebuilt
    assert reg.counter("compile.builds") == 1
    assert reg.counter("compile.cache.misses") == 1
    assert reg.counter("compile.cache.hits") == 1


def test_instantiate_counts_checkouts():
    reg = MetricsRegistry()
    compiled = compiled_testbed("mini3", seed=7, metrics=reg)
    compiled.instantiate(metrics=reg)
    compiled.instantiate(metrics=reg)
    assert reg.counter("compile.instantiations") == 2
    assert reg.counter("compile.builds") == 1


def test_cache_disabled_counts_bypasses_and_rebuilds():
    reg = MetricsRegistry()
    with compile_cache_disabled():
        a = compiled_testbed("mini3", seed=7, metrics=reg)
        b = compiled_testbed("mini3", seed=7, metrics=reg)
    assert a is not b
    assert reg.counter("compile.cache.bypasses") == 2
    assert reg.counter("compile.builds") == 2
    assert reg.counter("compile.cache.hits") == 0


def test_lru_evicts_beyond_capacity():
    reg = MetricsRegistry()
    for seed in range(COMPILE_CACHE_ENTRIES + 4):
        compiled_testbed("mini3", seed=seed, metrics=reg)
    assert reg.counter("compile.cache.evictions") == 4
    assert len(compile_cache()) <= COMPILE_CACHE_ENTRIES


def test_compile_testbed_always_builds():
    reg = MetricsRegistry()
    a = compile_testbed("mini3", seed=7, metrics=reg)
    b = compile_testbed("mini3", seed=7, metrics=reg)
    assert a is not b
    assert reg.counter("compile.builds") == 2
    assert reg.counter("compile.build_seconds") >= 0.0


# --- precompilation -----------------------------------------------------------


def test_precompile_dedups_worlds_and_skips_testbed_free_kinds():
    reg = MetricsRegistry()
    specs = (
        [ExperimentSpec.make("survey_pair", "mini3", s, src=0, dst=1)
         for s in (7, 7, 8)]
        + [ExperimentSpec.make("rng_probe", "mini3", s, draws=2)
           for s in range(5)]
    )
    worlds = precompile_specs(specs, metrics=reg)
    assert worlds == 2  # (mini3, 7) and (mini3, 8); rng_probe compiles none
    assert reg.counter("compile.builds") == 2
    # A later survey checkout hits the warm cache.
    checkout_testbed("mini3", seed=7, metrics=reg)
    assert reg.counter("compile.builds") == 2
    assert reg.counter("compile.cache.hits") == 1
