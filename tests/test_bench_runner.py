"""The bench runner: repeat schedules, warmup discard, obs publishing.

Everything here drives the runner on a FakeClock — benchmark bodies
"cost" exactly what they sleep, so assertions are exact equalities, not
timing tolerances.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_benchmark, run_benchmarks
from repro.bench.spec import (
    BenchmarkSpec,
    get_benchmark,
    register_benchmark,
    temporary_benchmark,
    unregister_benchmark,
)
from repro.obs.clock import FakeClock
from repro.obs.metrics import MetricsRegistry


def _stub(name="stub.sleepy", sleeps=(0.5,), extras=None, **kwargs):
    """A spec whose k-th call sleeps ``sleeps[k % len]`` fake seconds."""
    calls = {"n": 0}

    def fn(ctx, state):
        k = calls["n"]
        calls["n"] += 1
        ctx.clock.sleep(sleeps[k % len(sleeps)])
        return extras(k) if extras else None

    spec = BenchmarkSpec(name=name, fn=fn, **kwargs)
    return spec, calls


def test_samples_are_exact_on_a_fake_clock():
    spec, calls = _stub(sleeps=(0.25,), repeats=4, warmup=2)
    result = run_benchmark(spec, clock=FakeClock(),
                           metrics=MetricsRegistry())
    assert result.samples_s == (0.25, 0.25, 0.25, 0.25)
    assert result.min_s == 0.25
    assert result.warmup_discarded == 2
    assert calls["n"] == 6            # 2 warmup + 4 recorded


def test_warmup_passes_are_discarded():
    # Warmup call sleeps 9.0, recorded calls sleep 0.1: if warmup leaked
    # into the samples the min would be wrong by two orders.
    spec, _ = _stub(sleeps=(9.0, 0.1, 0.1, 0.1), repeats=3, warmup=1)
    result = run_benchmark(spec, clock=FakeClock(),
                           metrics=MetricsRegistry())
    assert result.samples_s == pytest.approx((0.1, 0.1, 0.1))


def test_metrics_come_from_the_fastest_repeat():
    spec, _ = _stub(sleeps=(0.3, 0.1, 0.2), repeats=3, warmup=0,
                    extras=lambda k: {"call": float(k)})
    result = run_benchmark(spec, clock=FakeClock(),
                           metrics=MetricsRegistry())
    assert result.samples_s == pytest.approx((0.3, 0.1, 0.2))
    assert result.metrics == {"call": 1.0}   # the 0.1 s repeat


def test_cli_style_overrides_trump_the_spec_schedule():
    spec, calls = _stub(sleeps=(0.5,), repeats=5, warmup=3)
    result = run_benchmark(spec, clock=FakeClock(),
                           metrics=MetricsRegistry(), repeats=2,
                           warmup=0)
    assert result.repeats == 2
    assert result.warmup_discarded == 0
    assert calls["n"] == 2


def test_repeats_publish_into_the_obs_registry():
    registry = MetricsRegistry()
    spec, _ = _stub(name="stub.observed", sleeps=(0.5,), repeats=3,
                    warmup=1)
    run_benchmark(spec, clock=FakeClock(), metrics=registry)
    # Profiler stages under the bench. prefix...
    assert registry.counter("bench.stub.observed.calls") == 3
    assert registry.counter("bench.stub.observed.seconds") == \
        pytest.approx(1.5)
    # ...and the per-repeat sample histogram.
    hist = registry.histogram("bench.stub.observed.sample_s")
    assert hist is not None and hist.total == 3
    assert registry.counter("bench.runs") == 1


def test_setup_runs_once_outside_the_timed_region():
    built = []

    def setup():
        built.append(True)
        return {"payload": 7}

    def fn(ctx, state):
        assert state == {"payload": 7}
        ctx.clock.sleep(0.125)
        return None

    spec = BenchmarkSpec(name="stub.setup", fn=fn, setup=setup,
                         repeats=3, warmup=1)
    result = run_benchmark(spec, clock=FakeClock(),
                           metrics=MetricsRegistry())
    assert built == [True]
    assert result.samples_s == (0.125,) * 3   # setup cost not sampled


def test_run_benchmarks_rejects_unknown_names_before_running():
    spec, calls = _stub(name="stub.nevermind", repeats=1, warmup=0)
    with temporary_benchmark(spec):
        with pytest.raises(KeyError, match="unknown benchmark"):
            run_benchmarks(["stub.nevermind", "stub.doesnotexist"],
                           clock=FakeClock(), metrics=MetricsRegistry())
    assert calls["n"] == 0


def test_run_benchmarks_builds_a_stamped_document():
    spec, _ = _stub(name="stub.documented", sleeps=(0.5,), repeats=2,
                    warmup=0, tags=("stub",))
    with temporary_benchmark(spec):
        doc = run_benchmarks(["stub.documented"], clock=FakeClock(),
                             metrics=MetricsRegistry())
    assert set(doc.results) == {"stub.documented"}
    assert doc.results["stub.documented"].tags == ("stub",)
    assert doc.environment.cpu_count >= 1
    assert doc.environment.python


# --- registry hygiene ---------------------------------------------------------


def test_duplicate_registration_is_a_bug():
    spec, _ = _stub(name="stub.twice", repeats=1)
    register_benchmark(spec)
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_benchmark(spec)
    finally:
        unregister_benchmark("stub.twice")


def test_unknown_lookup_suggests_close_names():
    spec, _ = _stub(name="stub.sampling", repeats=1)
    with temporary_benchmark(spec):
        with pytest.raises(KeyError, match="did you mean"):
            get_benchmark("stub.sampilng")


def test_temporary_benchmark_cleans_up():
    spec, _ = _stub(name="stub.transient", repeats=1)
    with temporary_benchmark(spec):
        assert get_benchmark("stub.transient") is spec
    with pytest.raises(KeyError):
        get_benchmark("stub.transient")


def test_spec_validation():
    with pytest.raises(ValueError, match="dotted"):
        BenchmarkSpec(name="nodots", fn=lambda ctx, state: None)
    with pytest.raises(ValueError, match="repeats"):
        BenchmarkSpec(name="a.b", fn=lambda ctx, state: None, repeats=0)
    with pytest.raises(ValueError, match="warmup"):
        BenchmarkSpec(name="a.b", fn=lambda ctx, state: None, warmup=-1)
    assert BenchmarkSpec(name="a.b.c",
                         fn=lambda ctx, state: None).domain == "a"
