"""1901 CSMA/CA contention dynamics."""

import numpy as np
import pytest

from repro.plc.csma import (
    CsmaConfig,
    CsmaSimulator,
    FlowSpec,
    jain_fairness,
    short_term_jitter,
)
from repro.sim.random import RandomStreams
from repro.units import MBPS


def _two_saturated_flows(testbed):
    return [
        FlowSpec("f1", testbed.networks["B1"].link("0", "1")),
        FlowSpec("f2", testbed.networks["B1"].link("2", "3")),
    ]


def test_flow_validation(testbed, streams):
    with pytest.raises(ValueError):
        CsmaSimulator([], streams)
    flows = _two_saturated_flows(testbed)
    flows[1] = FlowSpec("f1", flows[1].link)  # duplicate name
    with pytest.raises(ValueError):
        CsmaSimulator(flows, streams)


def test_single_saturated_flow_reaches_model_throughput(testbed, streams,
                                                        t_work):
    link = testbed.networks["B1"].link("0", "1")
    sim = CsmaSimulator([FlowSpec("solo", link)], streams, name="solo")
    stats = sim.run(t_work, 10.0)
    measured = stats["solo"].throughput_bps(10.0)
    ble = link.avg_ble_bps(t_work)
    app_level = link.throughput_bps(t_work, measured=False)
    # The frame sim reports MAC-level goodput: above the application-level
    # figure (which additionally pays Ethernet/IP + beacon + firmware
    # overheads) but below the raw BLE.
    assert app_level < measured < ble


def test_two_saturated_flows_share_and_collide(testbed, streams, t_work):
    sim = CsmaSimulator(_two_saturated_flows(testbed), streams, name="pair")
    stats = sim.run(t_work, 10.0)
    assert stats["f1"].collisions > 0
    assert stats["f2"].frames_sent > 0
    shares = [stats["f1"].pbs_delivered, stats["f2"].pbs_delivered]
    assert jain_fairness(shares) > 0.6  # long-term roughly fair


def test_cbr_flow_respects_offered_load(testbed, streams, t_work):
    link = testbed.networks["B1"].link("0", "1")
    flow = FlowSpec("cbr", link, rate_bps=150e3)
    sim = CsmaSimulator([flow], streams, name="cbr")
    stats = sim.run(t_work, 20.0)
    delivered = stats["cbr"].throughput_bps(20.0)
    assert delivered == pytest.approx(150e3, rel=0.3)


def test_deferral_counter_increases_short_term_jitter(testbed, t_work):
    """Ablation: the 1901 DC causes short-term unfairness ([19], [21])."""
    jitters = {}
    for use_dc in (True, False):
        streams = RandomStreams(seed=99)
        sim = CsmaSimulator(
            _two_saturated_flows(testbed), streams,
            config=CsmaConfig(use_deferral_counter=use_dc),
            name=f"dc-{use_dc}")
        stats = sim.run(t_work, 8.0)
        jitters[use_dc] = short_term_jitter(stats["f1"].transmit_times)
    assert jitters[True] > jitters[False]


def test_capture_effect_hits_estimator_of_short_frames(testbed, t_work):
    """Fig. 23's mechanism end-to-end."""
    net = testbed.networks["B1"]
    est = net.estimator("1", "0")
    est.reset()
    est.observe_clean_pbs(t_work, 1_000_000)
    before = est.estimated_capacity_bps(t_work)
    flows = [
        FlowSpec("probe", net.link("1", "0"), rate_bps=150e3, estimator=est),
        FlowSpec("bg", net.link("6", "11")),
    ]
    sim = CsmaSimulator(flows, RandomStreams(7), name="capture")
    sim.run(t_work, 20.0)
    after = est.estimated_capacity_bps(t_work + 20.0)
    assert after < 0.8 * before


def test_bursts_protect_the_estimator(testbed, t_work):
    """Fig. 24: same probing budget in 20-packet bursts — no sensitivity."""
    net = testbed.networks["B1"]
    est = net.estimator("1", "0")
    est.reset()
    est.observe_clean_pbs(t_work, 1_000_000)
    before = est.estimated_capacity_bps(t_work)
    flows = [
        FlowSpec("probe", net.link("1", "0"), rate_bps=150e3,
                 burst_packets=20, estimator=est),
        FlowSpec("bg", net.link("6", "11")),
    ]
    sim = CsmaSimulator(flows, RandomStreams(7), name="burst")
    sim.run(t_work, 20.0)
    after = est.estimated_capacity_bps(t_work + 20.0)
    assert after == pytest.approx(before, rel=0.05)


def test_metric_cache_eviction_preserves_current_window(testbed, t_work):
    """Regression: the old cache hit its size bound and cleared
    *everything*, including the hot 100 ms window the very next frame
    re-reads. LRU eviction must keep the in-use window resident."""
    link = testbed.networks["B1"].link("0", "1")
    flow = FlowSpec("solo", link)
    sim = CsmaSimulator([flow], RandomStreams(seed=5), name="evict")
    sim._metric_cache.max_entries = 4
    hot = sim._link_metrics(flow, t_work)
    for k in range(12):   # 12 cold windows through a 4-entry cache
        sim._link_metrics(flow, t_work + 1.0 + 0.1 * k)
        assert sim._link_metrics(flow, t_work) == hot
    assert sim._metric_cache.stats.evictions > 0
    hits_before = sim._metric_cache.stats.hits
    assert sim._link_metrics(flow, t_work) == hot
    assert sim._metric_cache.stats.hits == hits_before + 1


def test_streaming_jitter_matches_list_statistic(testbed, streams, t_work):
    """The Welford accumulator must agree with the list-based formula
    while ``transmit_times`` is complete."""
    sim = CsmaSimulator(_two_saturated_flows(testbed), streams, name="jit")
    stats = sim.run(t_work, 3.0)
    for flow_stats in stats.values():
        assert flow_stats.frames_sent > 2
        assert flow_stats.short_term_jitter == pytest.approx(
            short_term_jitter(flow_stats.transmit_times), rel=1e-9)


def test_transmit_times_growth_is_bounded(monkeypatch):
    from repro.plc import csma as csma_mod

    monkeypatch.setattr(csma_mod, "MAX_TRACKED_TRANSMIT_TIMES", 5)
    stats = csma_mod.FlowStats()
    for k in range(12):
        stats.record_transmit(0.5 * k)
    assert len(stats.transmit_times) == 5
    assert stats.transmit_times_dropped == 7
    # The streaming jitter still covers every frame: constant gaps → 0.
    assert stats.short_term_jitter == pytest.approx(0.0, abs=1e-12)


def test_jain_fairness_bounds():
    assert jain_fairness([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert jain_fairness([1.0, 0.0]) == pytest.approx(0.5)
    assert jain_fairness([]) == 1.0


def test_short_term_jitter_requires_samples():
    assert short_term_jitter([0.0, 1.0]) == 0.0
    assert short_term_jitter([0.0, 0.5, 2.0, 2.1]) > 0.0


def test_four_saturated_flows_split_roughly_fairly(testbed, streams, t_work):
    """1901 long-term airtime fairness generalises beyond two flows."""
    net = testbed.networks["B1"]
    flows = [FlowSpec(f"f{k}", net.link(str(2 * k), str(2 * k + 1)))
             for k in range(4)]
    sim = CsmaSimulator(flows, streams, name="quad")
    stats = sim.run(t_work, 8.0)
    shares = [stats[f"f{k}"].frames_sent for k in range(4)]
    assert min(shares) > 0
    assert jain_fairness([float(s) for s in shares]) > 0.85


def test_saturated_flow_starves_nobody_completely(testbed, streams, t_work):
    """A saturated flow plus two CBR probes: probes still deliver."""
    net = testbed.networks["B1"]
    flows = [
        FlowSpec("bulk", net.link("0", "1")),
        FlowSpec("p1", net.link("2", "3"), rate_bps=150e3),
        FlowSpec("p2", net.link("6", "7"), rate_bps=150e3),
    ]
    sim = CsmaSimulator(flows, streams, name="mix3")
    stats = sim.run(t_work, 15.0)
    for name in ("p1", "p2"):
        delivered = stats[name].throughput_bps(15.0)
        assert delivered > 0.5 * 150e3
