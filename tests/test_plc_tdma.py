"""TDMA extension: 1901's contention-free mode (§2.2)."""

import numpy as np
import pytest

from repro.plc.csma import CsmaSimulator, FlowSpec
from repro.plc.tdma import (
    TdmaAllocation,
    TdmaScheduler,
    csma_vs_tdma_jitter,
)
from repro.sim.random import RandomStreams
from repro.units import BEACON_PERIOD


def test_allocation_validation():
    with pytest.raises(ValueError):
        TdmaAllocation("f", start_s=BEACON_PERIOD, duration_s=0.001)
    with pytest.raises(ValueError):
        TdmaAllocation("f", start_s=0.0, duration_s=0.0)


def test_scheduler_validation():
    with pytest.raises(ValueError):
        TdmaScheduler(schedulable_fraction=0.0)
    scheduler = TdmaScheduler()
    with pytest.raises(ValueError):
        scheduler.allocate({"f": -1.0})
    assert scheduler.allocate({}) == []


def test_proportional_share_allocation():
    scheduler = TdmaScheduler(schedulable_fraction=0.9)
    allocations = scheduler.allocate({"a": 30e6, "b": 10e6})
    by_name = {a.flow_name: a for a in allocations}
    assert by_name["a"].duration_s == pytest.approx(
        3 * by_name["b"].duration_s)
    total = sum(a.duration_s for a in allocations)
    assert total == pytest.approx(0.9 * BEACON_PERIOD)
    # Non-overlapping, back-to-back.
    ordered = sorted(allocations, key=lambda a: a.start_s)
    for first, second in zip(ordered, ordered[1:]):
        assert second.start_s == pytest.approx(
            first.start_s + first.duration_s)


def test_predicted_throughput_scales_with_share(testbed, t_work):
    scheduler = TdmaScheduler()
    link_a = testbed.networks["B1"].link("0", "1")
    link_b = testbed.networks["B1"].link("2", "3")
    allocations = scheduler.allocate({"a": 30e6, "b": 10e6})
    results = scheduler.predict(allocations, {"a": link_a, "b": link_b},
                                t_work)
    by_name = {r.flow_name: r for r in results}
    assert by_name["a"].throughput_bps > by_name["b"].throughput_bps
    for r in results:
        assert r.access_jitter_s == 0.0
        assert 0.0 < r.throughput_bps < link_a.avg_ble_bps(t_work)


def test_tdma_removes_csma_jitter(testbed, t_work):
    """The quantified gap commercial CSMA-only devices leave (§2.2)."""
    flows = [FlowSpec("f1", testbed.networks["B1"].link("0", "1")),
             FlowSpec("f2", testbed.networks["B1"].link("2", "3"))]
    sim = CsmaSimulator(flows, RandomStreams(55), name="tdma-compare")
    stats = sim.run(t_work, 6.0)
    csma_jitter = csma_vs_tdma_jitter(stats["f1"].transmit_times)
    assert csma_jitter > 0.0   # CSMA access times are irregular
    # TDMA access jitter is identically zero by construction.
    scheduler = TdmaScheduler()
    allocations = scheduler.allocate({"f1": 10e6, "f2": 10e6})
    results = scheduler.predict(
        allocations,
        {"f1": flows[0].link, "f2": flows[1].link}, t_work)
    assert all(r.access_jitter_s == 0.0 for r in results)
