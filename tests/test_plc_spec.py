"""PHY constants: the paper's own arithmetic must hold."""

import numpy as np
import pytest

from repro.plc.spec import (
    HPAV,
    HPAV500,
    MODULATION_BITS,
    MODULATION_SNR_THRESHOLDS_DB,
    PlcSpec,
)
from repro.units import MBPS


def test_one_symbol_rate_matches_paper():
    """§7.2: R_1sym = 520·8/Tsym ≈ 89.4 Mbps for HPAV."""
    assert HPAV.one_symbol_rate_bps / MBPS == pytest.approx(89.4, abs=0.2)


def test_hpav_ble_ceiling_matches_nominal_rate():
    """All carriers at 1024-QAM with the 16/21 code ≈ 150 Mbps (§4.1)."""
    assert HPAV.max_ble_bps / MBPS == pytest.approx(150.0, abs=2.0)


def test_hpav500_extends_band_and_rate():
    assert HPAV500.band_high_hz > HPAV.band_high_hz
    assert HPAV500.num_carriers > HPAV.num_carriers
    assert HPAV500.max_ble_bps > 2.2 * HPAV.max_ble_bps


def test_carrier_frequencies_span_band():
    f = HPAV.carrier_frequencies()
    assert len(f) == HPAV.num_carriers == 917
    assert f[0] == HPAV.band_low_hz
    assert f[-1] == HPAV.band_high_hz
    assert (np.diff(f) > 0).all()


def test_modulation_tables_are_consistent():
    assert len(MODULATION_BITS) == len(MODULATION_SNR_THRESHOLDS_DB)
    assert list(MODULATION_BITS) == sorted(MODULATION_BITS)
    assert list(MODULATION_SNR_THRESHOLDS_DB) == sorted(
        MODULATION_SNR_THRESHOLDS_DB)
    assert MODULATION_BITS[0] == 0 and MODULATION_BITS[-1] == 10


def test_pb_total_is_520_bytes():
    """The 520 B (512 payload + 8 header) §7.2 computes with."""
    assert HPAV.pb_total_bytes == 520


def test_max_pbs_per_frame_scales_with_ble():
    low = HPAV.max_pbs_per_frame(20 * MBPS)
    high = HPAV.max_pbs_per_frame(150 * MBPS)
    assert 1 <= low < high
    # At 150 Mbps a 2501 µs frame carries ~90 PBs.
    assert high == int(150 * MBPS * HPAV.max_frame_duration_s / (520 * 8))


def test_tone_map_expiry_is_30s():
    assert HPAV.tone_map_expiry_s == 30.0
