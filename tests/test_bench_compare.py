"""The regression gate: noise-aware baseline-vs-candidate comparison.

The acceptance scenario for the bench plane lives here: a baseline is
synthesized, a 3x slowdown is injected into a stub benchmark, and
``compare_documents`` must fail it while a within-noise candidate
passes — all on a FakeClock, so the verdicts are deterministic.
"""

from __future__ import annotations

import pytest

from repro.bench.compare import (
    DEFAULT_FAIL_RATIO,
    DEFAULT_WARN_RATIO,
    bootstrap_ratio_band,
    compare_documents,
    format_comparison,
)
from repro.bench.runner import run_benchmarks
from repro.bench.schema import (
    BenchDocument,
    BenchResult,
    Environment,
    dump_document,
    load_document,
)
from repro.bench.spec import BenchmarkSpec, temporary_benchmark
from repro.obs.clock import FakeClock
from repro.obs.metrics import MetricsRegistry

_ENV = Environment(python="3.11.7", platform="linux", cpu_count=4,
                   numpy="2.0.0", git_sha=None)

#: Baseline repeat samples with realistic ~2% scheduler noise.
BASE_SAMPLES = (0.102, 0.100, 0.103, 0.101, 0.104)


def _doc(**samples_by_name) -> BenchDocument:
    doc = BenchDocument(environment=_ENV)
    for name, samples in samples_by_name.items():
        doc.add(BenchResult(name=name.replace("_", "."),
                            samples_s=tuple(samples)))
    return doc


def test_injected_3x_slowdown_fails_the_gate():
    baseline = _doc(stub_work=BASE_SAMPLES)
    slow = _doc(stub_work=tuple(3.0 * s for s in BASE_SAMPLES))
    comparison = compare_documents(baseline, slow)
    (row,) = comparison.rows
    assert row.status == "fail"
    assert row.ratio == pytest.approx(3.0)
    assert row.band[0] > DEFAULT_FAIL_RATIO
    assert not comparison.ok


def test_within_noise_candidate_passes():
    baseline = _doc(stub_work=BASE_SAMPLES)
    noisy = _doc(stub_work=tuple(1.03 * s for s in BASE_SAMPLES))
    comparison = compare_documents(baseline, noisy)
    (row,) = comparison.rows
    assert row.status == "pass"
    assert comparison.ok


def test_improvement_passes():
    baseline = _doc(stub_work=BASE_SAMPLES)
    faster = _doc(stub_work=tuple(0.5 * s for s in BASE_SAMPLES))
    comparison = compare_documents(baseline, faster)
    assert comparison.rows[0].status == "pass"
    assert comparison.rows[0].ratio == pytest.approx(0.5)


def test_suspicious_but_unresolved_slowdown_only_warns():
    """A point estimate between warn and fail thresholds must not hard-
    fail: rerun, don't revert."""
    baseline = _doc(stub_work=BASE_SAMPLES)
    ratio = (DEFAULT_WARN_RATIO + DEFAULT_FAIL_RATIO) / 2
    sluggish = _doc(stub_work=tuple(ratio * s for s in BASE_SAMPLES))
    comparison = compare_documents(baseline, sluggish)
    (row,) = comparison.rows
    assert row.status == "warn"
    assert comparison.ok          # warnings do not trip the gate
    assert comparison.warnings == [row]


def test_missing_benchmark_fails_the_gate():
    baseline = _doc(stub_work=BASE_SAMPLES, stub_other=BASE_SAMPLES)
    candidate = _doc(stub_work=BASE_SAMPLES)
    comparison = compare_documents(baseline, candidate)
    statuses = {row.name: row.status for row in comparison.rows}
    assert statuses["stub.other"] == "missing"
    assert not comparison.ok


def test_new_benchmark_passes_but_is_reported():
    baseline = _doc(stub_work=BASE_SAMPLES)
    candidate = _doc(stub_work=BASE_SAMPLES, stub_fresh=BASE_SAMPLES)
    comparison = compare_documents(baseline, candidate)
    statuses = {row.name: row.status for row in comparison.rows}
    assert statuses["stub.fresh"] == "new"
    assert comparison.ok


def test_comparison_is_deterministic():
    baseline = _doc(stub_work=BASE_SAMPLES)
    candidate = _doc(stub_work=tuple(1.4 * s for s in BASE_SAMPLES))
    first = compare_documents(baseline, candidate)
    second = compare_documents(baseline, candidate)
    assert first.rows == second.rows


def test_bootstrap_band_degenerates_with_single_samples():
    lo, hi = bootstrap_ratio_band([0.2], [0.3])
    assert lo == pytest.approx(1.5)
    assert hi == pytest.approx(1.5)


def test_bootstrap_band_rejects_empty_sides():
    with pytest.raises(ValueError):
        bootstrap_ratio_band([], [0.1])


def test_format_comparison_leads_with_the_verdict():
    baseline = _doc(stub_work=BASE_SAMPLES)
    slow = _doc(stub_work=tuple(3.0 * s for s in BASE_SAMPLES))
    text = format_comparison(compare_documents(baseline, slow))
    assert text.splitlines()[0].startswith("FAIL")
    assert "gate: FAIL" in text
    ok_text = format_comparison(compare_documents(baseline, baseline))
    assert "gate: OK" in ok_text


# --- end to end: runner -> schema round trip -> gate --------------------------


def _sleepy_spec(sleep_s: float) -> BenchmarkSpec:
    def fn(ctx, state):
        ctx.clock.sleep(sleep_s)
        return None
    return BenchmarkSpec(name="stub.gated", fn=fn, repeats=5, warmup=1)


def _run_doc(sleep_s: float) -> BenchDocument:
    with temporary_benchmark(_sleepy_spec(sleep_s)):
        return run_benchmarks(["stub.gated"], clock=FakeClock(),
                              metrics=MetricsRegistry(),
                              environment=_ENV)


def test_regression_gate_end_to_end_through_the_schema():
    """Baseline run -> canonical JSON -> reload -> candidate runs: the
    injected 3x slowdown fails, the within-noise candidate passes."""
    baseline = load_document(dump_document(_run_doc(0.1)))

    slow = compare_documents(baseline, _run_doc(0.3))
    assert [r.status for r in slow.rows] == ["fail"]

    fine = compare_documents(baseline, _run_doc(0.1005))
    assert [r.status for r in fine.rows] == ["pass"]
    assert fine.ok
