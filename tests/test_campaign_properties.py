"""Property tests: seed derivation and campaign-engine invariants.

The determinism and resume contracts are stated in
``docs/architecture.md``; these tests enforce them over randomized spec
lists rather than one blessed example. The cheap ``rng_probe`` task kind
(no testbed build) keeps each engine run in the milliseconds, so hypothesis
can afford whole-campaign executions per example.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    ExperimentSpec,
    check_specs,
    run_campaign,
    spec_grid,
)
from repro.sim.random import RandomStreams, derive_seed

# Engine runs fork real processes on the pool path; keep example counts
# low and deadlines off.
ENGINE_SETTINGS = settings(
    max_examples=5, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-", min_size=1,
    max_size=24)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


# --- sim.random.derive_seed ---------------------------------------------------


@given(seed=seeds, name=names)
def test_derive_seed_is_pure_and_bounded(seed, name):
    a = derive_seed(seed, name)
    assert a == derive_seed(seed, name)
    assert 0 <= a < 2**63


@given(seed=seeds, name_a=names, name_b=names)
def test_derive_seed_separates_names(seed, name_a, name_b):
    if name_a == name_b:
        return
    assert derive_seed(seed, name_a) != derive_seed(seed, name_b)


@given(seed_a=seeds, seed_b=seeds, name=names)
def test_derive_seed_separates_roots(seed_a, seed_b, name):
    if seed_a == seed_b:
        return
    assert derive_seed(seed_a, name) != derive_seed(seed_b, name)


@given(seed=seeds, name=names)
def test_spawned_streams_are_reproducible(seed, name):
    a = RandomStreams(seed).spawn(name).get("x").uniform(size=3)
    b = RandomStreams(seed).spawn(name).get("x").uniform(size=3)
    assert (a == b).all()


# --- spec identity ------------------------------------------------------------


spec_lists = st.lists(
    st.tuples(seeds, st.integers(0, 99), st.integers(1, 6)),
    min_size=1, max_size=8, unique=True,
).map(lambda items: [
    ExperimentSpec.make("rng_probe", "mini3", seed, idx=idx, draws=draws)
    for seed, idx, draws in items])


@given(specs=spec_lists)
def test_task_keys_unique_across_generated_grids(specs):
    keys = [s.task_key() for s in specs]
    assert len(set(keys)) == len(keys)
    check_specs(specs)  # must not raise for a duplicate-free list


@given(seed=seeds)
def test_spec_roundtrips_through_dict(seed):
    spec = ExperimentSpec.make("rng_probe", "mini3", seed,
                               draws=3, tags=["a", "b"])
    clone = ExperimentSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.task_key() == spec.task_key()
    assert clone.task_seed() == spec.task_seed()


def test_grid_task_keys_unique_at_scale():
    specs = spec_grid("rng_probe", ["mini3", "office"], range(25),
                      param_grid={"idx": range(10)})
    keys = {s.task_key() for s in specs}
    assert len(keys) == len(specs) == 2 * 25 * 10


# --- engine determinism across worker counts ---------------------------------


@ENGINE_SETTINGS
@given(specs=spec_lists)
def test_artifacts_identical_for_1_2_and_4_workers(specs, tmp_path_factory):
    base = tmp_path_factory.mktemp("workers")
    blobs = []
    for workers in (1, 2, 4):
        path = base / f"w{workers}-{len(blobs)}.jsonl"
        stats = run_campaign(specs, path, workers=workers)
        assert stats.completed == len(specs)
        blobs.append(path.read_bytes())
    assert blobs[0] == blobs[1] == blobs[2]


@ENGINE_SETTINGS
@given(specs=spec_lists, data=st.data())
def test_resume_after_kill_matches_uninterrupted_run(specs, data,
                                                     tmp_path_factory):
    base = tmp_path_factory.mktemp("resume")
    clean = base / f"clean-{len(specs)}.jsonl"
    run_campaign(specs, clean, workers=0)
    reference = clean.read_bytes()

    lines = clean.read_text().splitlines(keepends=True)
    # Kill point: keep k complete task lines, maybe a torn partial line.
    k = data.draw(st.integers(min_value=0, max_value=len(specs)),
                  label="kill_after_tasks")
    torn = data.draw(st.booleans(), label="torn_tail")
    survived = "".join(lines[: 1 + k])
    if torn and k < len(specs):
        survived += lines[1 + k][: max(1, len(lines[1 + k]) // 2)]
    victim = base / f"victim-{k}-{torn}.jsonl"
    victim.write_text(survived)

    stats = run_campaign(specs, victim, workers=0)
    assert stats.resumed == k
    assert stats.completed == len(specs) - k
    assert victim.read_bytes() == reference
