"""Property tests: seed derivation and campaign-engine invariants.

The determinism and resume contracts are stated in
``docs/architecture.md``; these tests enforce them over randomized spec
lists rather than one blessed example. The cheap ``rng_probe`` task kind
(no testbed build) keeps each engine run in the milliseconds, so hypothesis
can afford whole-campaign executions per example.
"""

from __future__ import annotations

import math

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    ExperimentSpec,
    check_specs,
    run_campaign,
    spec_grid,
)
from repro.campaign.tasks import (
    TASK_REGISTRY,
    TaskOutput,
    temporary_task_kind,
)
from repro.obs import MetricsRegistry, current_tracer, trace_path_for
from repro.sim.random import RandomStreams, derive_seed

pytestmark = pytest.mark.slow

# Engine runs fork real processes on the pool path; keep example counts
# low (deadline/health-check policy comes from the conftest profiles).
ENGINE_SETTINGS = settings(max_examples=5)

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-", min_size=1,
    max_size=24)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


# --- sim.random.derive_seed ---------------------------------------------------


@given(seed=seeds, name=names)
def test_derive_seed_is_pure_and_bounded(seed, name):
    a = derive_seed(seed, name)
    assert a == derive_seed(seed, name)
    assert 0 <= a < 2**63


@given(seed=seeds, name_a=names, name_b=names)
def test_derive_seed_separates_names(seed, name_a, name_b):
    if name_a == name_b:
        return
    assert derive_seed(seed, name_a) != derive_seed(seed, name_b)


@given(seed_a=seeds, seed_b=seeds, name=names)
def test_derive_seed_separates_roots(seed_a, seed_b, name):
    if seed_a == seed_b:
        return
    assert derive_seed(seed_a, name) != derive_seed(seed_b, name)


@given(seed=seeds, name=names)
def test_spawned_streams_are_reproducible(seed, name):
    a = RandomStreams(seed).spawn(name).get("x").uniform(size=3)
    b = RandomStreams(seed).spawn(name).get("x").uniform(size=3)
    assert (a == b).all()


# --- spec identity ------------------------------------------------------------


spec_lists = st.lists(
    st.tuples(seeds, st.integers(0, 99), st.integers(1, 6)),
    min_size=1, max_size=8, unique=True,
).map(lambda items: [
    ExperimentSpec.make("rng_probe", "mini3", seed, idx=idx, draws=draws)
    for seed, idx, draws in items])


@given(specs=spec_lists)
def test_task_keys_unique_across_generated_grids(specs):
    keys = [s.task_key() for s in specs]
    assert len(set(keys)) == len(keys)
    check_specs(specs)  # must not raise for a duplicate-free list


@given(seed=seeds)
def test_spec_roundtrips_through_dict(seed):
    spec = ExperimentSpec.make("rng_probe", "mini3", seed,
                               draws=3, tags=["a", "b"])
    clone = ExperimentSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.task_key() == spec.task_key()
    assert clone.task_seed() == spec.task_seed()


def test_grid_task_keys_unique_at_scale():
    specs = spec_grid("rng_probe", ["mini3", "office"], range(25),
                      param_grid={"idx": range(10)})
    keys = {s.task_key() for s in specs}
    assert len(keys) == len(specs) == 2 * 25 * 10


# --- engine determinism across worker counts ---------------------------------


@ENGINE_SETTINGS
@given(specs=spec_lists)
def test_artifacts_identical_for_1_2_and_4_workers(specs, tmp_path_factory):
    base = tmp_path_factory.mktemp("workers")
    blobs = []
    for workers in (1, 2, 4):
        path = base / f"w{workers}-{len(blobs)}.jsonl"
        stats = run_campaign(specs, path, workers=workers)
        assert stats.completed == len(specs)
        blobs.append(path.read_bytes())
    assert blobs[0] == blobs[1] == blobs[2]


@ENGINE_SETTINGS
@given(specs=spec_lists, data=st.data())
def test_resume_after_kill_matches_uninterrupted_run(specs, data,
                                                     tmp_path_factory):
    base = tmp_path_factory.mktemp("resume")
    clean = base / f"clean-{len(specs)}.jsonl"
    run_campaign(specs, clean, workers=0)
    reference = clean.read_bytes()

    lines = clean.read_text().splitlines(keepends=True)
    # Kill point: keep k complete task lines, maybe a torn partial line.
    k = data.draw(st.integers(min_value=0, max_value=len(specs)),
                  label="kill_after_tasks")
    torn = data.draw(st.booleans(), label="torn_tail")
    survived = "".join(lines[: 1 + k])
    if torn and k < len(specs):
        survived += lines[1 + k][: max(1, len(lines[1 + k]) // 2)]
    victim = base / f"victim-{k}-{torn}.jsonl"
    victim.write_text(survived)

    stats = run_campaign(specs, victim, workers=0)
    assert stats.resumed == k
    assert stats.completed == len(specs) - k
    assert victim.read_bytes() == reference


# --- metrics-registry merge laws ----------------------------------------------


mutations = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), st.sampled_from("abc"),
                  st.integers(-5, 5)),
        st.tuples(st.just("inc"), st.sampled_from("abc"),
                  st.floats(-10, 10, allow_nan=False)),
        st.tuples(st.just("watermark"), st.sampled_from("pq"),
                  st.floats(0, 100, allow_nan=False)),
        st.tuples(st.just("observe"), st.sampled_from("hk"),
                  st.floats(0, 100, allow_nan=False)),
    ), max_size=20)


def _registry_from(ops) -> MetricsRegistry:
    reg = MetricsRegistry()
    for op, name, value in ops:
        if op == "inc":
            reg.inc(name, value)
        elif op == "watermark":
            reg.watermark(name, value, sim_time=abs(value) / 2)
        else:
            reg.observe(name, value, edges=(1.0, 10.0, 100.0))
    return reg


def _assert_registries_match(left: MetricsRegistry,
                             right: MetricsRegistry) -> None:
    """Bit-exact on the discrete structure (int counters, bucket counts,
    gauges, min/max); float sums are IEEE additions, so regrouping may
    move the last ulp — compare those to relative 1e-12."""
    la, ra = left.to_dict(), right.to_dict()
    assert la["gauges"] == ra["gauges"]
    assert set(la["counters"]) == set(ra["counters"])
    for name, value in la["counters"].items():
        other = ra["counters"][name]
        if isinstance(value, int) and isinstance(other, int):
            assert value == other, name
        else:
            assert math.isclose(value, other, rel_tol=1e-12,
                                abs_tol=1e-12), name
    assert set(la["histograms"]) == set(ra["histograms"])
    for name, hist in la["histograms"].items():
        other = ra["histograms"][name]
        for key in ("edges", "counts", "min", "max"):
            assert hist[key] == other[key], (name, key)
        assert math.isclose(hist["sum"], other["sum"], rel_tol=1e-12,
                            abs_tol=1e-12), name


@given(ops_a=mutations, ops_b=mutations)
def test_registry_merge_is_commutative(ops_a, ops_b):
    # Commutativity is bit-exact: IEEE addition commutes, and gauge/
    # min/max picks are order-free selections.
    ab, ba = _registry_from(ops_a), _registry_from(ops_b)
    ab.merge(_registry_from(ops_b))
    ba.merge(_registry_from(ops_a))
    assert ab.to_dict() == ba.to_dict()


@given(ops_a=mutations, ops_b=mutations, ops_c=mutations)
def test_registry_merge_is_associative(ops_a, ops_b, ops_c):
    left = _registry_from(ops_a)
    left.merge(_registry_from(ops_b))
    left.merge(_registry_from(ops_c))
    bc = _registry_from(ops_b)
    bc.merge(_registry_from(ops_c))
    right = _registry_from(ops_a)
    right.merge(bc)
    _assert_registries_match(left, right)


@given(ops=mutations)
def test_registry_merge_roundtrips_through_serialised_form(ops):
    """Merging a ``to_dict()`` payload (the cross-process path) equals
    merging the live registry."""
    via_dict, via_object = MetricsRegistry(), MetricsRegistry()
    via_dict.merge(_registry_from(ops).to_dict())
    via_object.merge(_registry_from(ops))
    assert via_dict.to_dict() == via_object.to_dict()


# --- tracing never moves a result byte ----------------------------------------


def _traced_probe(spec: ExperimentSpec, attempt: int) -> TaskOutput:
    """``rng_probe`` plus sim-time trace events — cheap enough for
    hypothesis to run whole traced campaigns per example.  Registered
    per-test via :func:`temporary_task_kind` so the kind never leaks
    into other test modules."""
    p = spec.params_dict
    streams = RandomStreams(seed=spec.task_seed())
    draws = int(p.get("draws", 4))
    values = [float(x) for x in
              streams.get("probe").uniform(size=draws)]
    tracer = current_tracer()
    if tracer.enabled:
        for k, value in enumerate(values):
            tracer.event("probe.draw", float(k), value=value)
        tracer.span("probe.run", 0.0, float(draws), draws=draws)
    return TaskOutput(records=[{"task_seed": spec.task_seed(),
                                "uniform": values}])


traced_spec_lists = st.lists(
    st.tuples(seeds, st.integers(0, 99), st.integers(1, 6)),
    min_size=1, max_size=6, unique=True,
).map(lambda items: [
    ExperimentSpec.make("traced_probe", "mini3", seed, idx=idx,
                        draws=draws)
    for seed, idx, draws in items])


@ENGINE_SETTINGS
@given(specs=traced_spec_lists)
def test_tracing_never_changes_result_bytes(specs, tmp_path_factory):
    """The tentpole determinism contract: a traced campaign's result
    artifact is byte-identical to an untraced one at workers 1 and 4,
    and the trace sidecar itself is byte-identical across worker
    counts (its events carry sim-time only)."""
    base = tmp_path_factory.mktemp("traced")
    with temporary_task_kind("traced_probe", _traced_probe,
                             params=("draws", "idx")):
        plain = base / "plain.jsonl"
        run_campaign(specs, plain, workers=1)
        reference = plain.read_bytes()

        sidecars = []
        for workers in (1, 4):
            path = base / f"traced-w{workers}.jsonl"
            stats = run_campaign(specs, path, workers=workers,
                                 trace=True)
            assert stats.completed == len(specs)
            assert path.read_bytes() == reference
            sidecar = trace_path_for(path)
            assert sidecar.exists()
            sidecars.append(sidecar.read_bytes())
    assert "traced_probe" not in TASK_REGISTRY  # context cleaned up
    assert sidecars[0] == sidecars[1]
    assert b"probe.draw" in sidecars[0]  # events actually flowed
    assert b'"wall"' not in sidecars[0]  # sim-time only, no wall clock


# --- execute-plane backends never move a result byte --------------------------


mixed_spec_lists = st.lists(
    st.tuples(seeds, st.integers(0, 99), st.integers(1, 6)),
    min_size=1, max_size=4, unique=True,
).flatmap(lambda items: st.integers(0, 2**31 - 1).map(lambda s: (
    [ExperimentSpec.make("rng_probe", "mini3", seed, idx=idx, draws=draws)
     for seed, idx, draws in items]
    + [ExperimentSpec.make("survey_pair", "mini3", s, src=0, dst=1,
                           duration_s=1.0, interval_s=0.5)])))


@settings(max_examples=3)
@given(specs=mixed_spec_lists)
def test_artifacts_identical_across_all_backends(specs, tmp_path_factory):
    """PR 7's execute-plane contract: whichever
    :mod:`repro.campaign.backends` mechanism runs a mixed-kind campaign
    — inline, process pool, thread pool, or chunked batching — and at
    any worker count, the finalized artifact bytes are identical."""
    base = tmp_path_factory.mktemp("backends")
    reference = None
    for n, (backend, workers) in enumerate(
            [("inline", 0),
             ("process", 1), ("process", 4),
             ("thread", 1), ("thread", 4),
             ("chunked", 1), ("chunked", 4)]):
        path = base / f"{n}-{backend}-w{workers}.jsonl"
        stats = run_campaign(specs, path, workers=workers,
                             backend=backend, chunk_size=2)
        assert stats.completed == len(specs)
        blob = path.read_bytes()
        if reference is None:
            reference = blob
        else:
            assert blob == reference, f"{backend} w{workers}"
