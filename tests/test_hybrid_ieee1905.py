"""IEEE 1905 abstraction layer."""

import pytest

from repro.core.metrics import LinkMetricRecord
from repro.hybrid.ieee1905 import AbstractionLayer


def _rec(t, medium, capacity):
    return LinkMetricRecord(time=t, src="0", dst="1", medium=medium,
                            capacity_bps=capacity)


def test_update_and_get():
    layer = AbstractionLayer()
    layer.update(_rec(1.0, "plc", 80e6))
    record = layer.get("0", "1", "plc")
    assert record.capacity_bps == 80e6
    assert layer.get("0", "1", "wifi") is None
    assert len(layer) == 1


def test_stale_update_rejected():
    layer = AbstractionLayer()
    layer.update(_rec(5.0, "plc", 80e6))
    with pytest.raises(ValueError):
        layer.update(_rec(4.0, "plc", 70e6))


def test_refresh_replaces():
    layer = AbstractionLayer()
    layer.update(_rec(1.0, "plc", 80e6))
    layer.update(_rec(2.0, "plc", 60e6))
    assert layer.get("0", "1", "plc").capacity_bps == 60e6
    assert len(layer) == 1


def test_staleness_limit_hides_old_records():
    layer = AbstractionLayer(staleness_limit_s=10.0)
    layer.update(_rec(0.0, "plc", 80e6))
    assert layer.get("0", "1", "plc", now=5.0) is not None
    assert layer.get("0", "1", "plc", now=20.0) is None


def test_media_sorted_by_capacity():
    layer = AbstractionLayer()
    layer.update(_rec(1.0, "plc", 40e6))
    layer.update(_rec(1.0, "wifi", 90e6))
    media = layer.media_for("0", "1")
    assert [r.medium for r in media] == ["wifi", "plc"]
    assert layer.capacities("0", "1") == {"wifi": 90e6, "plc": 40e6}


def test_links_enumerates_keys():
    layer = AbstractionLayer()
    layer.update(_rec(1.0, "plc", 40e6))
    layer.update(_rec(1.0, "wifi", 90e6))
    assert layer.links() == [("0", "1", "plc"), ("0", "1", "wifi")]
