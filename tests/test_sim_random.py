"""Deterministic named random streams."""

from repro.sim.random import RandomStreams


def test_same_name_same_seed_reproduces():
    a = RandomStreams(seed=5).get("plc.noise").uniform(size=4)
    b = RandomStreams(seed=5).get("plc.noise").uniform(size=4)
    assert (a == b).all()


def test_different_names_are_independent():
    streams = RandomStreams(seed=5)
    a = streams.get("alpha").uniform(size=8)
    b = streams.get("beta").uniform(size=8)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("x").uniform(size=4)
    b = RandomStreams(seed=2).get("x").uniform(size=4)
    assert not (a == b).all()


def test_get_returns_same_generator_with_advancing_state():
    streams = RandomStreams(seed=0)
    g1 = streams.get("s")
    first = g1.uniform()
    g2 = streams.get("s")
    assert g1 is g2
    assert g2.uniform() != first  # state advanced, not reset


def test_fresh_resets_to_initial_state():
    streams = RandomStreams(seed=0)
    first = streams.fresh("s").uniform()
    again = streams.fresh("s").uniform()
    assert first == again


def test_spawn_creates_independent_family():
    parent = RandomStreams(seed=9)
    child = parent.spawn("worker")
    a = parent.fresh("x").uniform()
    b = child.fresh("x").uniform()
    assert a != b
