"""Seed-sweep smoke: golden-trace slices under non-golden seeds.

The golden suite pins seed 7 bit-for-bit. This sweep runs the same
pipeline slices under three *other* seeds and asserts only structural
invariants — every metric physical (non-negative, finite, losses in
[0, 1]), time axes monotone, and cumulative delivered bytes monotone in
the horizon. A model change that only works at the golden seed (or a
seed-dependent NaN/negative-rate path) fails here, not in production
campaigns.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.netsim.runner import ScenarioRunner
from repro.netsim.scenario import build_scenario
from repro.testbed import build_preset_testbed
from repro.testbed.experiments import (
    measure_pair,
    night_start,
    poll_ble_series,
    working_hours_start,
)

SWEEP_SEEDS = (11, 23, 41)
#: Same structural spread as the golden survey: short good pairs, the
#: kitchen-adjacent bad one, a B2 pair.
PAIRS = ((0, 1), (6, 5), (13, 16))


@pytest.fixture(scope="module", params=SWEEP_SEEDS,
                ids=lambda s: f"seed{s}")
def world(request):
    return build_preset_testbed("office", seed=request.param)


def test_survey_rows_stay_physical(world):
    for src, dst in PAIRS:
        row = measure_pair(world, src, dst, working_hours_start(),
                           duration=5.0, report_interval=0.5)
        for value in (row.plc_mean_mbps, row.plc_std_mbps,
                      row.wifi_mean_mbps, row.wifi_std_mbps,
                      row.air_distance_m, row.cable_distance_m):
            assert math.isfinite(value) and value >= 0.0
        # The office floor plan is seed-independent: short pairs stay
        # connected on PLC whatever the channel seed.
        if (src, dst) == (0, 1):
            assert row.plc_connected


def test_ble_series_axes_are_sound(world):
    series = poll_ble_series(world, 0, 1, night_start(), duration=2.0)
    times = np.asarray(series.times, dtype=float)
    values = np.asarray(series.values, dtype=float)
    assert np.all(np.diff(times) > 0)
    assert np.all(np.isfinite(values)) and np.all(values >= 0.0)


def test_scenario_bytes_monotone_in_horizon(world):
    """Cumulative delivered bytes per flow never shrink as the horizon
    grows, and the accounting invariants hold at every horizon."""
    runner = ScenarioRunner(world, check_invariants=True)
    t0 = working_hours_start()
    scenario = build_scenario("office-afternoon", t0)
    previous = None
    for horizon in (60.0, 120.0, 180.0):
        results = runner.run(scenario, horizon_s=horizon)
        assert runner.stats.invariant_violations == 0
        for name, result in results.items():
            assert math.isfinite(result.delivered_bytes)
            assert result.delivered_bytes >= 0.0
            assert result.starved_quanta >= 0
            assert result.active_time_s >= 0.0
            if previous is not None:
                assert (result.delivered_bytes
                        >= previous[name].delivered_bytes)
        previous = results
