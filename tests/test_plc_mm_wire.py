"""Management-message wire format."""

import pytest

from repro.plc import mm_wire
from repro.plc.mm_wire import (
    MmDecodeError,
    MmType,
    decode_amp_stat_cnf,
    decode_mm,
    decode_nw_info_cnf,
    decode_rs_dev_cnf,
    encode_amp_stat_cnf,
    encode_mm,
    encode_nw_info_cnf,
    encode_rs_dev_cnf,
    mac_address,
)


def test_header_roundtrip():
    frame = encode_mm(MmType.SNIFFER_REQ, b"\x01\x02")
    mm = decode_mm(frame)
    assert mm.mmtype is MmType.SNIFFER_REQ
    assert mm.payload == b"\x01\x02"


def test_decode_rejects_garbage():
    with pytest.raises(MmDecodeError):
        decode_mm(b"\x00")
    with pytest.raises(MmDecodeError):
        decode_mm(b"\x07" + b"\x00" * 10)          # bad version
    bad_oui = bytearray(encode_mm(MmType.NW_INFO_CNF))
    bad_oui[3] ^= 0xFF
    with pytest.raises(MmDecodeError):
        decode_mm(bytes(bad_oui))
    unknown_type = bytearray(encode_mm(MmType.NW_INFO_CNF))
    unknown_type[1] = 0xEE
    with pytest.raises(MmDecodeError):
        decode_mm(bytes(unknown_type))


def test_request_confirm_convention():
    for req, cnf in ((MmType.NW_INFO_REQ, MmType.NW_INFO_CNF),
                     (MmType.AMP_STAT_REQ, MmType.AMP_STAT_CNF),
                     (MmType.RS_DEV_REQ, MmType.RS_DEV_CNF)):
        assert int(cnf) == int(req) + 1


def test_nw_info_roundtrip_quantises_to_whole_mbps():
    frame = encode_nw_info_cnf("7", tx_rate_mbps=113.7, rx_rate_mbps=88.2)
    mac, tx, rx = decode_nw_info_cnf(frame)
    assert mac == mac_address("7")
    assert (tx, rx) == (114, 88)       # the chips report whole Mbps
    # Clamped to the 8-bit field.
    _, tx, _ = decode_nw_info_cnf(encode_nw_info_cnf("7", 900.0, 0.0))
    assert tx == 255


def test_nw_info_wrong_type_rejected():
    with pytest.raises(MmDecodeError):
        decode_nw_info_cnf(encode_rs_dev_cnf())


def test_amp_stat_roundtrip():
    frame = encode_amp_stat_cnf(pbs_received=100_000, pbs_errored=1_234)
    received, errored, pb_err = decode_amp_stat_cnf(frame)
    assert (received, errored) == (100_000, 1_234)
    assert pb_err == pytest.approx(0.01234)


def test_amp_stat_validation():
    with pytest.raises(ValueError):
        encode_amp_stat_cnf(10, 11)
    with pytest.raises(ValueError):
        encode_amp_stat_cnf(-1, 0)
    received, errored, pb_err = decode_amp_stat_cnf(
        encode_amp_stat_cnf(0, 0))
    assert pb_err == 0.0


def test_rs_dev_roundtrip():
    assert decode_rs_dev_cnf(encode_rs_dev_cnf(True))
    assert not decode_rs_dev_cnf(encode_rs_dev_cnf(False))


def test_mac_addresses_stable_and_distinct():
    assert mac_address("3") == mac_address("3")
    macs = {mac_address(str(k)) for k in range(19)}
    assert len(macs) == 19
    for mac in macs:
        assert len(mac) == 6
        assert mac[0] & 0x02          # locally administered


def test_roundtrip_rates_helper():
    tx, rx = mm_wire.roundtrip_rates("5", 147.6, 93.1)
    assert (tx, rx) == (148, 93)
