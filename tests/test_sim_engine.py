"""Discrete-event engine semantics."""

import pytest

from repro.sim.engine import Simulator, run_sampler


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, lambda tag=tag: order.append(tag))
    sim.run()
    assert order == ["first", "second", "third"]


def test_scheduling_in_the_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(ValueError):
        sim.schedule(5.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_in(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_until_does_not_fire_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(5))
    sim.schedule(15.0, lambda: fired.append(15))
    sim.run(until=10.0)
    assert fired == [5]
    assert sim.now == 10.0
    sim.run()
    assert fired == [5, 15]


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule_in(1.0, lambda: chain(n + 1))

    sim.schedule(0.0, lambda: chain(0))
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_periodic_task_fires_and_stops():
    sim = Simulator()
    ticks = []
    task = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    task.stop()
    sim.run(until=10.0)
    assert len(ticks) == 3
    assert task.stopped


def test_periodic_task_rejects_nonpositive_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.every(0.0, lambda: None)


def test_stop_halts_run_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 2]


def test_advance_to_refuses_to_skip_events():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.advance_to(2.0)


def test_pending_count_ignores_cancelled():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    assert sim.pending_count() == 1


def test_run_sampler_collects_expected_samples():
    samples = run_sampler(duration=1.0, interval=0.25,
                          sample=lambda t: round(t, 6))
    assert samples == [0.25, 0.5, 0.75, 1.0]
