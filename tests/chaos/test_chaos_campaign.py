"""Campaign-engine chaos: poison tasks, torn writes, hangs, crashes.

The engine's contracts under injected faults:

* **work conservation** — every spec is accounted for exactly once:
  completed, resumed, or quarantined;
* **byte identity for survivors** — the finalized artifact (and the
  quarantine sidecar) are byte-identical at any worker count, however
  crashes and retries interleave;
* **quarantine** — deterministically poisoned specs land in the
  ``*.quarantine.jsonl`` sidecar instead of tripping the circuit
  breaker, and recover out of it on a later clean run;
* **torn writes** — a half-written artifact line (a killed run) is
  discarded on resume and the rerun converges to the clean bytes.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignEngine,
    EngineConfig,
    read_artifacts,
    read_quarantine,
    run_campaign,
    spec_grid,
)
from repro.campaign.artifacts import quarantine_path_for
from repro.faults import classify_task

#: Classification rates for the standing chaos population.
RATES = {"poison_rate": 0.25, "crash_rate": 0.3, "hang_rate": 0.0}


def _chaos_specs(chaos_seed, n=12, **overrides):
    params = {"fault_seed": chaos_seed, **RATES, "crashes": 1,
              "draws": 4, **overrides}
    return spec_grid("chaos_probe", ["mini3"], range(n), **params)


def _fates(specs, chaos_seed):
    return {s.task_key(): classify_task(
        chaos_seed, s.task_key(), RATES["poison_rate"],
        RATES["crash_rate"], RATES["hang_rate"]) for s in specs}


def test_chaos_population_exercises_every_fate(chaos_seed):
    """The standing population must contain poison, crash and clean
    tasks, or the suite below tests nothing."""
    fates = set(_fates(_chaos_specs(chaos_seed), chaos_seed).values())
    assert {"poison", "crash", "clean"} <= fates


def test_classification_is_per_class_independent(chaos_seed):
    """Tuning one class's rate never changes another class's members."""
    specs = _chaos_specs(chaos_seed)
    poisoned = {k for k, f in _fates(specs, chaos_seed).items()
                if f == "poison"}
    without_crashes = {
        s.task_key() for s in specs
        if classify_task(chaos_seed, s.task_key(),
                         RATES["poison_rate"], 0.0, 0.0) == "poison"}
    assert poisoned == without_crashes


@pytest.mark.parametrize("workers", [1, 4])
def test_poison_quarantined_crashes_recover(tmp_path, chaos_seed,
                                            workers):
    """Poison -> sidecar; crashes retry to success; everyone accounted."""
    specs = _chaos_specs(chaos_seed)
    fates = _fates(specs, chaos_seed)
    out = tmp_path / f"chaos-w{workers}.jsonl"
    stats = run_campaign(specs, out, name="chaos", workers=workers,
                         retries=2, quarantine=True)
    poisoned = {k for k, f in fates.items() if f == "poison"}
    _, artifacts = read_artifacts(out)
    assert {a.task_key for a in artifacts} == set(fates) - poisoned
    entries = read_quarantine(quarantine_path_for(out))
    assert {e.task_key for e in entries} == poisoned
    assert stats.quarantined == len(poisoned)
    assert stats.failed == 0  # breaker untouched: default max_failures=0
    assert stats.completed + stats.quarantined == len(specs)
    assert all("poisoned task" in e.error for e in entries)


def test_survivor_artifacts_byte_identical_across_worker_counts(
        tmp_path, chaos_seed):
    """The ISSUE's acceptance bar: same bytes at workers=1 and 4, for
    both the artifact and the quarantine sidecar."""
    specs = _chaos_specs(chaos_seed)
    paths = {}
    for workers in (1, 4):
        out = tmp_path / f"w{workers}" / "chaos.jsonl"
        out.parent.mkdir()
        run_campaign(specs, out, name="chaos", workers=workers,
                     retries=2, quarantine=True)
        paths[workers] = out
    assert paths[1].read_bytes() == paths[4].read_bytes()
    assert (quarantine_path_for(paths[1]).read_bytes()
            == quarantine_path_for(paths[4]).read_bytes())


def test_torn_artifact_write_converges_on_resume(tmp_path, chaos_seed):
    """A kill mid-write leaves a torn tail; the rerun heals it to the
    clean run's exact bytes."""
    specs = _chaos_specs(chaos_seed)
    clean = tmp_path / "clean.jsonl"
    run_campaign(specs, clean, name="chaos", workers=0, retries=2,
                 quarantine=True)
    torn = tmp_path / "torn.jsonl"
    text = clean.read_text(encoding="utf-8")
    lines = text.splitlines(keepends=True)
    assert len(lines) > 3
    # Keep the header and a few complete lines, then tear the next line
    # in half — exactly what SIGKILL during an append leaves behind.
    torn.write_text("".join(lines[:3]) + lines[3][: len(lines[3]) // 2],
                    encoding="utf-8")
    stats = run_campaign(specs, torn, name="chaos", workers=0, retries=2,
                         quarantine=True)
    assert stats.resumed == 2  # the two surviving complete task lines
    assert torn.read_bytes() == clean.read_bytes()
    assert (quarantine_path_for(torn).read_bytes()
            == quarantine_path_for(clean).read_bytes())


def test_quarantined_task_recovers_on_a_healthier_rerun(tmp_path,
                                                        chaos_seed):
    """With retries=0 crash tasks are quarantined too; a rerun with
    retries lets them recover, and finalize drops them from the sidecar
    — only true poison stays."""
    specs = _chaos_specs(chaos_seed)
    fates = _fates(specs, chaos_seed)
    out = tmp_path / "recover.jsonl"
    first = run_campaign(specs, out, name="chaos", workers=0, retries=0,
                         quarantine=True)
    crashed = {k for k, f in fates.items() if f == "crash"}
    poisoned = {k for k, f in fates.items() if f == "poison"}
    assert first.quarantined == len(crashed | poisoned)
    second = run_campaign(specs, out, name="chaos", workers=0, retries=2,
                          quarantine=True)
    assert second.resumed == first.completed
    assert second.completed == len(crashed)
    entries = read_quarantine(quarantine_path_for(out))
    assert {e.task_key for e in entries} == poisoned
    _, artifacts = read_artifacts(out)
    assert {a.task_key for a in artifacts} == set(fates) - poisoned


def test_hang_times_out_into_quarantine(tmp_path, chaos_seed):
    """A hung worker is abandoned by the timeout clock and the task is
    quarantined with a deterministic error string."""
    specs = spec_grid("chaos_probe", ["mini3"], [0],
                      fault_seed=chaos_seed, poison_rate=0.0,
                      crash_rate=0.0, hang_rate=1.0, hang_s=2.0)
    out = tmp_path / "hang.jsonl"
    engine = CampaignEngine(
        specs, out, name="chaos",
        config=EngineConfig(workers=1, timeout_s=0.3, retries=0,
                            quarantine=True))
    stats = engine.run()
    assert stats.timeouts == 1
    assert stats.quarantined == 1
    assert stats.wall_seconds < 1.5  # abandoned, not waited out (2 s)
    entries = read_quarantine(engine.quarantine_path)
    assert len(entries) == 1
    assert entries[0].error == "TimeoutError(attempt exceeded 0.3s)"


def test_quarantine_disabled_keeps_breaker_semantics(tmp_path,
                                                     chaos_seed):
    """Without opt-in, poison still trips the circuit breaker — the
    pre-quarantine contract is unchanged."""
    from repro.campaign import CampaignAborted

    specs = _chaos_specs(chaos_seed)
    with pytest.raises(CampaignAborted):
        run_campaign(specs, tmp_path / "breaker.jsonl", name="chaos",
                     workers=0, retries=0)
