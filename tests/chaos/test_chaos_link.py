"""FaultyLink chaos: the medium contract must survive any fault plan.

Invariants pinned here:

* a wrapped link is still a :class:`repro.medium.Link`, and its batch
  path stays bit-identical to its scalar path under arbitrary plans;
* an outage window is a *dead* medium — zero capacity, zero throughput,
  loss saturated, disconnected — with no leakage outside the window;
* overlapping fault windows compose multiplicatively, identically in
  both paths;
* plans themselves are deterministic, canonical and round-trippable
  (the replay contract of ``docs/testing.md``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.two_metric_model import (
    TwoMetricLinkModel,
    TwoMetricParameters,
)
from repro.faults import (
    ANY_TARGET,
    FaultEvent,
    FaultPlan,
    FaultPlanConfig,
    FaultyLink,
)
from repro.medium.link import Link, series_from_samples
from repro.sim.random import RandomStreams

_TM_PARAMS = TwoMetricParameters(
    slot_ble_bps=(80e6, 95e6, 110e6, 90e6, 85e6, 100e6),
    jitter_sigma_rel=0.05,
    jitter_hold_s=2.0,
    pb_err_base=0.02,
    pb_err_spread=0.8)


def _link(seed: int) -> TwoMetricLinkModel:
    return TwoMetricLinkModel(_TM_PARAMS, RandomStreams(seed=seed),
                              name="tm-0-1")


def _dense_plan(chaos_seed: int) -> FaultPlan:
    return FaultPlan.generate(
        chaos_seed, "link-chaos", horizon_s=60.0,
        targets={"links": ["tm-0-1"]},
        config=FaultPlanConfig(outages=3, degradations=3, snr_collapses=3,
                               outage_s=(2.0, 8.0),
                               degradation_s=(3.0, 15.0)))


@pytest.mark.parametrize("measured", [False, True])
def test_batch_equals_scalar_under_fault_plan(chaos_seed, record_plan,
                                              measured):
    """The contract's core promise holds through the fault transform."""
    plan = record_plan(_dense_plan(chaos_seed))
    batch_link = FaultyLink(_link(11), plan)
    scalar_link = FaultyLink(_link(11), plan)
    ts = np.arange(0.0, 60.0, 0.37)
    assert plan.active_mask("link_outage", "tm-0-1", ts).any(), \
        "plan never hits the grid — widen the windows"
    batch = batch_link.sample_series(ts, measured=measured)
    reference = series_from_samples(
        [scalar_link.sample(float(t), measured=measured) for t in ts],
        name=scalar_link.name, medium=scalar_link.medium)
    for field in reference.data.dtype.names:
        assert np.array_equal(batch.data[field], reference.data[field]), (
            f"column {field!r} differs between sample_series and the "
            f"scalar loop under faults (measured={measured})")


def test_faulty_link_is_still_a_link():
    plan = FaultPlan(seed=0, events=[])
    wrapped = FaultyLink(_link(3), plan)
    assert isinstance(wrapped, Link)
    assert wrapped.medium == "plc"
    assert wrapped.name == "tm-0-1"


def test_outage_window_is_a_dead_medium():
    """No silent throughput from a dead medium — and no leakage outside."""
    plan = FaultPlan(seed=0, events=[
        FaultEvent("link_outage", "tm-0-1", 10.0, 20.0)])
    wrapped = FaultyLink(_link(5), plan)
    bare = _link(5)
    for t in (10.0, 14.2, 19.999):
        assert wrapped.capacity_bps(t) == 0.0
        assert wrapped.throughput_bps(t, measured=False) == 0.0
        assert wrapped.sample(t, measured=False).loss == 1.0
        assert not wrapped.is_connected(t)
    for t in (0.0, 9.99, 20.0, 30.0):
        ours = wrapped.sample(t, measured=False)
        theirs = bare.sample(t, measured=False)
        assert wrapped.capacity_bps(t) == bare.capacity_bps(t)
        assert ours.throughput_bps == theirs.throughput_bps
        assert ours.loss == theirs.loss
        assert wrapped.is_connected(t)


def test_overlapping_events_compose_multiplicatively():
    keep = 0.5
    drop_db = 10.0  # 10 dB -> factor 0.1
    plan = FaultPlan(seed=0, events=[
        FaultEvent("link_degradation", "tm-0-1", 0.0, 100.0,
                   severity=keep),
        FaultEvent("snr_collapse", "tm-0-1", 50.0, 100.0,
                   severity=drop_db)])
    wrapped = FaultyLink(_link(9), plan)
    assert wrapped.fault_factor(25.0) == keep
    assert wrapped.fault_factor(75.0) == pytest.approx(keep * 0.1)
    ts = np.array([25.0, 75.0, 150.0])
    factors = wrapped.fault_factor_series(ts)
    assert factors[0] == wrapped.fault_factor(25.0)
    assert factors[1] == wrapped.fault_factor(75.0)
    assert factors[2] == 1.0


def test_events_target_by_name_medium_or_wildcard():
    by_name = FaultPlan(seed=0, events=[
        FaultEvent("link_outage", "tm-0-1", 0.0, 1.0)])
    by_medium = FaultPlan(seed=0, events=[
        FaultEvent("link_outage", "plc", 0.0, 1.0)])
    by_any = FaultPlan(seed=0, events=[
        FaultEvent("link_outage", ANY_TARGET, 0.0, 1.0)])
    other = FaultPlan(seed=0, events=[
        FaultEvent("link_outage", "someone-else", 0.0, 1.0)])
    for plan, hits in ((by_name, True), (by_medium, True),
                       (by_any, True), (other, False)):
        wrapped = FaultyLink(_link(2), plan)
        assert (wrapped.fault_factor(0.5) == 0.0) is hits


def test_plan_is_deterministic_and_round_trips(chaos_seed):
    plan = _dense_plan(chaos_seed)
    again = _dense_plan(chaos_seed)
    assert plan.events == again.events
    assert plan.seed == again.seed
    restored = FaultPlan.from_dict(plan.to_dict())
    assert restored.events == plan.events
    assert restored.seed == plan.seed
    other = FaultPlan.generate(
        chaos_seed + 1, "link-chaos", horizon_s=60.0,
        targets={"links": ["tm-0-1"]},
        config=FaultPlanConfig(outages=3))
    assert other.events != plan.events


def test_plan_event_order_is_canonical():
    events = [FaultEvent("link_outage", "b", 5.0, 6.0),
              FaultEvent("link_outage", "a", 5.0, 6.0),
              FaultEvent("link_outage", "a", 1.0, 2.0)]
    assert (FaultPlan(seed=0, events=events).events
            == FaultPlan(seed=0, events=reversed(events)).events)


def test_invalid_events_rejected():
    with pytest.raises(ValueError):
        FaultEvent("meteor_strike", "x", 0.0, 1.0)
    with pytest.raises(ValueError):
        FaultEvent("link_outage", "x", 5.0, 5.0)


def test_real_wifi_link_dies_under_medium_outage(testbed, t_work):
    """A testbed WiFi link wrapped with a medium-wide outage goes dark
    while its PLC sibling keeps carrying traffic."""
    plan = FaultPlan(seed=0, events=[
        FaultEvent("link_outage", "wifi", t_work, t_work + 10.0)])
    wifi = FaultyLink(testbed.wifi_link(0, 1), plan)
    plc = FaultyLink(testbed.plc_link(0, 1), plan)
    ts = t_work + np.arange(0.0, 10.0, 0.5)
    assert np.all(wifi.sample_series(ts, measured=False).throughput_bps
                  == 0.0)
    assert np.all(plc.sample_series(ts, measured=False).throughput_bps
                  > 0.0)
