"""Hybrid-layer chaos: blackouts, storms, and the reorder buffer.

Invariants pinned here:

* a bonded device whose WiFi medium blacks out mid-run **fails over**
  to PLC within a bounded detection window (one quantum after the
  estimate sees the outage), and reports no silent throughput from the
  dead medium;
* storms are deterministic functions of the plan, and a reorder/loss
  storm can never deadlock the destination's :class:`ReorderBuffer`:
  every surviving packet is released exactly once, in order, and the
  buffer drains empty;
* the mesh router stops trusting a medium that has gone quiet within
  ``max_metric_age_s`` — blackout detection is bounded at the routing
  layer too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import LinkMetricRecord
from repro.faults import FaultEvent, FaultPlan, FaultPlanConfig, FaultyLink
from repro.faults.storm import apply_storm
from repro.hybrid.aggregator import HybridDevice
from repro.hybrid.ieee1905 import AbstractionLayer
from repro.hybrid.reorder import ReorderBuffer
from repro.hybrid.routing import HybridMeshRouter
from repro.traffic.packet import Packet

# Deliberately misaligned with the 1 s probe grid: a scheduled probe
# must NOT be what catches the blackout — the stall detector has to.
OUTAGE_START, OUTAGE_END = 5.35, 15.35


@pytest.fixture()
def blackout_device(testbed, t_work):
    """A bonded pair whose WiFi medium dies for t_work+[5, 15)."""
    plan = FaultPlan(seed=0, events=[
        FaultEvent("link_outage", "wifi", t_work + OUTAGE_START,
                   t_work + OUTAGE_END)])
    return HybridDevice(testbed.plc_link(0, 1),
                        FaultyLink(testbed.wifi_link(0, 1), plan),
                        testbed.streams)


def test_wifi_blackout_triggers_bounded_failover(blackout_device, testbed,
                                                 t_work):
    result = blackout_device.run_saturated("hybrid", t_work, 25.0)
    assert result.failovers >= 1
    times = result.throughput.times - t_work
    values = result.throughput.values
    # Interior of the outage, clear of the 1 s smoothing window edges.
    inside = (times >= OUTAGE_START + 1.0) & (times <= OUTAGE_END - 1.0)
    assert inside.sum() > 50
    plc_only = HybridDevice(
        testbed.plc_link(0, 1), testbed.wifi_link(0, 1),
        testbed.streams).run_saturated("plc", t_work, 25.0)
    plc_inside = plc_only.throughput.values[inside]
    # No silent throughput from the dead medium: the bond cannot beat a
    # healthy PLC-only run while WiFi is gone.
    assert np.max(values[inside]) <= 1.2 * np.max(plc_inside)
    # Bounded detection: after the re-probe the bond keeps delivering on
    # PLC — at most a handful of detection quanta may read (near) zero.
    stalled = int(np.sum(values[inside] < 1e6))
    assert stalled <= 2
    assert np.mean(values[inside]) > 0.5 * np.mean(plc_inside)


def test_dead_wifi_reports_zero_not_phantom_rate(blackout_device, t_work):
    result = blackout_device.run_saturated("wifi", t_work, 25.0)
    times = result.throughput.times - t_work
    inside = (times >= OUTAGE_START + 1.0) & (times <= OUTAGE_END - 1.0)
    assert np.all(result.throughput.values[inside] == 0.0)
    outside = times < OUTAGE_START - 1.0
    assert np.mean(result.throughput.values[outside]) > 0.0


def _packet_stream(n: int, t0: float = 0.0,
                   spacing: float = 0.002):
    packets = []
    for seq in range(n):
        p = Packet(seq=seq, size_bytes=1500, created_at=t0 + seq * spacing)
        p.delivered_at = t0 + seq * spacing
        packets.append(p)
    return packets


def _storm_plan(chaos_seed: int) -> FaultPlan:
    return FaultPlan.generate(
        chaos_seed, "hybrid-storm", horizon_s=2.0,
        targets={"bonds": ["bond"]},
        config=FaultPlanConfig(loss_storms=2, reorder_storms=2,
                               storm_s=(0.3, 0.8),
                               loss_probability=(0.2, 0.5),
                               reorder_delay_s=(0.01, 0.05)))


def test_storm_is_deterministic(chaos_seed, record_plan):
    plan = record_plan(_storm_plan(chaos_seed))
    first = apply_storm(_packet_stream(500), plan, target="bond")
    second = apply_storm(_packet_stream(500), plan, target="bond")
    assert [p.seq for p in first[0]] == [p.seq for p in second[0]]
    assert ([p.delivered_at for p in first[0]]
            == [p.delivered_at for p in second[0]])
    assert first[1] == second[1]
    assert first[1], "plan dropped nothing — widen the loss windows"


def test_reorder_storm_never_deadlocks_the_buffer(chaos_seed,
                                                  record_plan):
    """Every surviving packet out, exactly once, buffer empty after."""
    plan = record_plan(_storm_plan(chaos_seed))
    survivors, dropped = apply_storm(_packet_stream(500), plan,
                                     target="bond")
    assert dropped and len(survivors) < 500
    buffer = ReorderBuffer(hole_timeout_s=0.02)
    released = []
    for packet in survivors:
        released.extend(buffer.push(packet, packet.delivered_at))
    end = survivors[-1].delivered_at
    released.extend(buffer.poll(end + 1.0))
    released.extend(buffer.flush(end + 1.0))
    assert buffer.pending_count == 0
    seqs = [p.seq for p in released]
    assert len(seqs) == len(set(seqs)) == len(survivors)
    assert set(seqs) == {p.seq for p in survivors}
    assert buffer.stats.delivered == len(survivors)


def test_poll_flushes_a_stuck_hole_without_new_arrivals():
    """The pre-fix deadlock: last packet lost, then silence. ``poll``
    must release the tail once the hole times out."""
    buffer = ReorderBuffer(hole_timeout_s=0.05)
    p0, p2 = _packet_stream(3)[0], _packet_stream(3)[2]
    assert [p.seq for p in buffer.push(p0, 0.0)] == [0]
    assert buffer.push(p2, 0.01) == []  # seq 1 lost in flight
    assert buffer.poll(0.02) == []      # hole not timed out yet
    released = buffer.poll(0.2)
    assert [p.seq for p in released] == [2]
    assert buffer.pending_count == 0
    assert buffer.stats.holes_flushed == 1


def test_flush_drains_everything_in_order():
    buffer = ReorderBuffer(hole_timeout_s=10.0)
    stream = _packet_stream(6)
    for packet in (stream[5], stream[3], stream[1]):
        buffer.push(packet, packet.delivered_at)
    released = buffer.flush(1.0)
    assert [p.seq for p in released] == [1, 3, 5]
    assert buffer.pending_count == 0
    assert buffer.flush(2.0) == []


def _record(src, dst, medium, t, capacity=50e6):
    return LinkMetricRecord(time=t, src=src, dst=dst, medium=medium,
                            capacity_bps=capacity, etx=1.0)


def test_router_drops_a_medium_that_stopped_reporting():
    """A blacked-out medium vanishes from routing within
    ``max_metric_age_s`` — stale metrics are not trusted forever."""
    layer = AbstractionLayer()
    layer.update(_record("0", "1", "plc", t=0.0))
    layer.update(_record("1", "2", "wifi", t=0.0))
    router = HybridMeshRouter(layer, max_metric_age_s=2.0)
    fresh = router.best_path("0", "2", now=1.0)
    assert fresh is not None and fresh.media == ("plc", "wifi")
    # PLC keeps reporting; WiFi has gone dark.
    layer.update(_record("0", "1", "plc", t=9.0))
    assert router.best_path("0", "2", now=10.0) is None
    assert router.best_path("0", "1", now=10.0) is not None
    assert ("1", "2") not in router.reachable_pairs(now=10.0)
    # Without the age limit the stale WiFi record is still trusted.
    assert HybridMeshRouter(layer).best_path("0", "2",
                                             now=10.0) is not None
