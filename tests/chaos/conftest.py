"""Chaos-suite harness: seeded fault plans, replayable failures.

Every chaos test derives its fault schedule from ``CHAOS_SEED``
(environment variable, default 7) through :class:`repro.faults.FaultPlan`
— so the whole suite is deterministic, and a failure is replayed by
re-running the failing test id under the same seed.

Tests register the plan they run under via the ``record_plan`` fixture.
When such a test fails, the harness

* appends the plan's human-readable schedule and a one-line replay
  command to the test report, and
* dumps ``plan.to_dict()`` as JSON under ``CHAOS_ARTIFACT_DIR``
  (default ``<repo>/chaos-failures/``) — the file CI uploads as the
  failure artifact.

See ``docs/testing.md`` ("Replaying a chaos failure").
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

#: Root seed for every fault plan in the suite (override to explore).
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "7"))

#: Plans recorded by the currently-run tests, keyed by node id.
_RECORDED_PLANS = {}


def pytest_collection_modifyitems(items):
    """Every test under tests/chaos/ carries the ``chaos`` marker."""
    here = Path(__file__).parent
    for item in items:
        if here in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.chaos)


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    return CHAOS_SEED


@pytest.fixture()
def record_plan(request):
    """Register the fault plan a test runs under (enables replay dumps)."""

    def record(plan):
        _RECORDED_PLANS[request.node.nodeid] = plan
        return plan

    return record


def _artifact_dir(config) -> Path:
    env = os.environ.get("CHAOS_ARTIFACT_DIR")
    if env:
        return Path(env)
    return Path(str(config.rootpath)) / "chaos-failures"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    plan = _RECORDED_PLANS.get(item.nodeid)
    if plan is None:
        return
    replay = (f"replay: CHAOS_SEED={CHAOS_SEED} "
              f"python -m pytest {item.nodeid!r}")
    report.sections.append(
        ("chaos fault plan", plan.describe() + "\n" + replay))
    out_dir = _artifact_dir(item.config)
    out_dir.mkdir(parents=True, exist_ok=True)
    safe = item.nodeid.replace("/", "_").replace("::", "--")
    payload = {"nodeid": item.nodeid, "chaos_seed": CHAOS_SEED,
               "plan": plan.to_dict()}
    (out_dir / f"{safe}.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n",
        encoding="utf-8")
