"""Scenario-runner chaos: medium blackouts through the fluid core.

``ScenarioRunner(link_decorator=...)`` is the injection seam: every link
the runner resolves is wrapped, so plan-scheduled outages reach all
flows. Invariants: a dead medium moves zero bytes (no silent
throughput), flows on the surviving medium keep going, and the
work-conservation accounting holds under any fault schedule.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultEvent, FaultPlan, faulty_link_decorator
from repro.netsim.runner import ScenarioRunner
from repro.netsim.scenario import build_scenario

HORIZON_S = 120.0


def _run(testbed, t_work, plan=None):
    runner = ScenarioRunner(
        testbed, check_invariants=True,
        link_decorator=None if plan is None
        else faulty_link_decorator(plan))
    results = runner.run(build_scenario("office-afternoon", t_work),
                         horizon_s=HORIZON_S)
    return runner, results


@pytest.fixture(scope="module")
def plc_blackout_runs(testbed):
    """Baseline vs PLC-dead-for-the-whole-horizon, same scenario."""
    from repro.testbed.experiments import working_hours_start

    t_work = working_hours_start()
    plan = FaultPlan(seed=0, events=[
        FaultEvent("link_outage", "plc", t_work - 1.0,
                   t_work + HORIZON_S + 1.0)])
    return _run(testbed, t_work), _run(testbed, t_work, plan)


def test_dead_plc_moves_zero_bytes(plc_blackout_runs):
    (_, baseline), (_, faulted) = plc_blackout_runs
    for name in ("probe", "bulk-a", "bulk-b"):  # pure-PLC flows
        assert baseline[name].delivered_bytes > 0
        assert faulted[name].delivered_bytes == 0
        assert faulted[name].starved_quanta > 0


def test_surviving_medium_keeps_carrying_the_hybrid_flow(
        plc_blackout_runs):
    """The hybrid 'video' flow loses its PLC constituent but keeps
    delivering over WiFi — degradation, not collapse."""
    (_, baseline), (_, faulted) = plc_blackout_runs
    assert faulted["video"].delivered_bytes > 0
    assert (faulted["video"].delivered_bytes
            <= baseline["video"].delivered_bytes * 1.01)


def test_work_conservation_holds_under_blackout(plc_blackout_runs):
    """check_invariants=True did not raise, and the accounting agrees:
    a fault plan can starve flows but never mint airtime."""
    (base_runner, _), (fault_runner, _) = plc_blackout_runs
    for runner in (base_runner, fault_runner):
        assert runner.stats.invariant_violations == 0
        assert runner.stats.max_domain_airtime <= 1.0 + 1e-6
    assert (fault_runner.stats.starved_quanta
            >= base_runner.stats.starved_quanta)


def test_windowed_outage_recovers_after_the_window(testbed, t_work):
    """An outage bounded in time degrades only its window: the flow
    delivers less than baseline but more than zero, and a later-starting
    identical flow is untouched."""
    plan = FaultPlan(seed=0, events=[
        FaultEvent("link_outage", "plc", t_work, t_work + 30.0)])
    # Fresh runners (module fixture reuses absolute times; the capacity
    # cache is per-runner so runs stay independent).
    _, baseline = _run(testbed, t_work)
    _, faulted = _run(testbed, t_work, plan)
    probe_base = baseline["probe"]
    probe_fault = faulted["probe"]
    assert 0 < probe_fault.delivered_bytes < probe_base.delivered_bytes
