"""Power-grid chaos: plan-scheduled appliance surge bursts.

A surge window forces its target appliances on — the adversarial version
of the paper's "random scale" (§6.3). Invariants: forced means forced
(regardless of schedule), nothing leaks outside the window, overlays
compose, and the whole thing stays a pure function of ``(appliance, t)``
so channel caches keep their determinism.
"""

from __future__ import annotations

import numpy as np

from repro.faults import (
    ANY_TARGET,
    FaultEvent,
    FaultPlan,
    FaultPlanConfig,
    inject_surges,
    surge_overlay,
)
from repro.powergrid.activity import OfficeActivityModel
from repro.powergrid.appliances import ApplianceInstance
from repro.sim.clock import MainsClock
from repro.sim.random import RandomStreams

#: Sunday 03:00 — intermittent appliances are almost surely off.
QUIET_T = MainsClock.at(day=6, hour=3.0)

APPLIANCES = [
    ApplianceInstance.make("microwave-1", "microwave", "o1"),
    ApplianceInstance.make("vacuum-1", "vacuum_cleaner", "o2"),
    ApplianceInstance.make("kettle-1", "coffee_machine", "o3"),
]


def _model(seed: int = 42) -> OfficeActivityModel:
    return OfficeActivityModel(RandomStreams(seed=seed))


def _surge_plan(window=(QUIET_T + 60.0, QUIET_T + 180.0),
                target="microwave-1") -> FaultPlan:
    return FaultPlan(seed=0, events=[
        FaultEvent("appliance_surge", target, *window)])


def test_surge_forces_target_on_inside_window_only():
    model = _model()
    baseline = _model()
    inject_surges(model, _surge_plan())
    microwave = APPLIANCES[0]
    grid = QUIET_T + np.arange(0.0, 300.0, 10.0)
    for t in grid:
        t = float(t)
        in_window = QUIET_T + 60.0 <= t < QUIET_T + 180.0
        if in_window:
            assert model.is_on(microwave, t)
        else:
            assert model.is_on(microwave, t) == baseline.is_on(
                microwave, t)


def test_surge_leaves_other_appliances_alone():
    model = _model()
    baseline = _model()
    inject_surges(model, _surge_plan(target="microwave-1"))
    for appliance in APPLIANCES[1:]:
        for t in QUIET_T + np.arange(0.0, 300.0, 25.0):
            assert model.is_on(appliance, float(t)) == baseline.is_on(
                appliance, float(t))


def test_wildcard_surge_is_the_microwave_plus_vacuum_worst_case():
    """An ``"*"`` surge turns the whole population on at once (Fig. 5's
    simultaneous-appliance scenario) — visible as a load spike."""
    model = _model()
    baseline = _model()
    inject_surges(model, _surge_plan(target=ANY_TARGET))
    t_in = QUIET_T + 100.0
    assert model.active_count(APPLIANCES, t_in) == len(APPLIANCES)
    assert (baseline.active_count(APPLIANCES, t_in)
            < len(APPLIANCES))  # quiet Sunday 3 am: not all on by chance


def test_overlays_compose_with_surge_consulted_first():
    model = _model()
    # A pre-existing overlay pinning the kettle off (maintenance mode).
    model.overlay = lambda appliance, t: (
        False if appliance.instance_id == "kettle-1" else None)
    inject_surges(model, _surge_plan(target="kettle-1"))
    inside, outside = QUIET_T + 100.0, QUIET_T + 250.0
    kettle = APPLIANCES[2]
    assert model.is_on(kettle, inside)        # surge wins inside
    assert not model.is_on(kettle, outside)   # prior overlay still holds


def test_surged_state_signatures_are_deterministic(chaos_seed,
                                                   record_plan):
    """Two identically built surged models agree everywhere — the
    property every channel cache keys on."""
    plan = record_plan(FaultPlan.generate(
        chaos_seed, "powergrid-chaos", horizon_s=600.0,
        targets={"appliances": [a.instance_id for a in APPLIANCES]},
        config=FaultPlanConfig(surges=3, surge_s=(30.0, 120.0)),
        t0=QUIET_T))
    a, b = _model(), _model()
    inject_surges(a, plan)
    inject_surges(b, plan)
    grid = QUIET_T + np.arange(0.0, 600.0, 7.0)
    sig_a = [a.state_signature(APPLIANCES, float(t)) for t in grid]
    sig_b = [b.state_signature(APPLIANCES, float(t)) for t in grid]
    assert sig_a == sig_b
    surged = plan.active_mask("appliance_surge",
                              APPLIANCES[0].instance_id, grid)
    if surged.any():
        on = np.array([s[0] for s in sig_a])
        assert np.all(on[surged])


def test_surge_overlay_is_pure_and_reusable():
    overlay = surge_overlay(_surge_plan())
    microwave = APPLIANCES[0]
    t = QUIET_T + 100.0
    assert overlay(microwave, t) is True
    assert overlay(microwave, QUIET_T) is None
    assert overlay(microwave, t) is True  # stateless: same answer again
