"""Testbed construction: floor layout, stations, networks, census."""

import numpy as np
import pytest

from repro.testbed import HPAV500_PRESET, build_testbed
from repro.testbed.floorplan import CCO_BY_BOARD
from repro.units import MBPS


def test_nineteen_stations_two_boards(testbed):
    assert testbed.station_indices() == list(range(19))
    boards = {testbed.board_of(i) for i in testbed.station_indices()}
    assert boards == {"B1", "B2"}
    b1 = [i for i in testbed.station_indices()
          if testbed.board_of(i) == "B1"]
    assert b1 == list(range(12))  # 0–11 on B1, 12–18 on B2 (Fig. 2)


def test_ccos_pinned_per_paper(testbed):
    assert CCO_BY_BOARD == {"B1": 11, "B2": 15}
    assert testbed.networks["B1"].cco.station_id == "11"
    assert testbed.networks["B2"].cco.station_id == "15"


def test_pair_enumeration(testbed):
    assert len(testbed.all_pairs()) == 19 * 18
    assert len(testbed.same_board_pairs()) == 12 * 11 + 7 * 6  # 174


def test_cross_board_plc_impossible(testbed):
    assert testbed.plc_link(0, 15) is None
    assert testbed.plc_link(15, 0) is None
    # But WiFi does not care about the wiring.
    assert testbed.wifi_link(0, 15) is not None


def test_cable_distances_span_paper_range(testbed):
    dists = [testbed.cable_distance(i, j)
             for i, j in testbed.same_board_pairs()]
    assert min(dists) > 10.0
    assert 70.0 < max(dists) < 120.0


def test_cross_board_cable_distance_is_hopeless(testbed):
    assert testbed.cable_distance(0, 15) > 200.0


def test_air_distances_include_blind_spot_range(testbed):
    dists = [testbed.air_distance(i, j)
             for i, j in testbed.same_board_pairs()]
    assert max(dists) > 35.0  # §4.1's >35 m blind-spot pairs exist


def test_formed_links_census_near_paper_count(testbed, t_work):
    """The paper forms 144 usable links out of the 174 candidates."""
    formed = testbed.formed_plc_links(t_work)
    assert 130 <= len(formed) <= 174


def test_wifi_links_cached(testbed):
    assert testbed.wifi_link(0, 1) is testbed.wifi_link(0, 1)
    assert testbed.wifi_link(0, 1) is not testbed.wifi_link(1, 0)


def test_mm_client_per_board(testbed):
    assert testbed.mm_client("B1") is testbed.mm_client("B1")
    assert testbed.mm_client("B1") is not testbed.mm_client("B2")


def test_build_is_deterministic(t_work):
    a = build_testbed(seed=21)
    b = build_testbed(seed=21)
    for (i, j) in [(0, 1), (11, 4), (15, 18)]:
        assert a.plc_link(i, j).avg_ble_bps(t_work) == \
            b.plc_link(i, j).avg_ble_bps(t_work)


def test_seeds_change_the_world(t_work):
    a = build_testbed(seed=21)
    b = build_testbed(seed=22)
    diffs = [abs(a.plc_link(i, j).avg_ble_bps(t_work)
                 - b.plc_link(i, j).avg_ble_bps(t_work))
             for (i, j) in [(0, 1), (2, 5), (15, 18)]]
    assert max(diffs) > 0


def test_av500_preset_raises_rates(t_work):
    av500 = build_testbed(seed=7, preset=HPAV500_PRESET)
    hpav_tb = build_testbed(seed=7)
    faster = 0
    pairs = [(13, 14), (0, 1), (2, 3), (15, 18)]
    for (i, j) in pairs:
        a = av500.plc_link(i, j).avg_ble_bps(t_work)
        h = hpav_tb.plc_link(i, j).avg_ble_bps(t_work)
        if a > 1.3 * h:
            faster += 1
    assert faster >= 3


def test_named_presets_resolve_and_build(t_work):
    from repro.testbed import (
        TESTBED_PRESETS,
        build_preset_testbed,
        resolve_testbed_preset,
    )
    assert {"office", "office-av500", "mini3", "wing-b2"} <= set(
        TESTBED_PRESETS)
    with pytest.raises(KeyError, match="unknown testbed preset"):
        resolve_testbed_preset("atlantis")
    mini = build_preset_testbed("mini3", seed=7)
    assert mini.station_indices() == [0, 1, 2]
    # The pinned CCo (station 11) is outside the subset; the lowest
    # member takes over.
    assert mini.networks["B1"].cco.station_id == "0"
    full = build_preset_testbed("office", seed=7)
    assert len(full.station_indices()) == 19
    assert full.networks["B1"].cco.station_id == "11"


def test_subset_world_is_consistent_with_full_world(t_work):
    """A subset build measures the same world: link metrics for the
    surviving stations match the full floor exactly."""
    from repro.testbed import build_preset_testbed
    mini = build_preset_testbed("mini3", seed=7)
    full = build_preset_testbed("office", seed=7)
    for (i, j) in [(0, 1), (1, 2), (2, 0)]:
        assert mini.plc_link(i, j).avg_ble_bps(t_work) == \
            full.plc_link(i, j).avg_ble_bps(t_work)
        assert mini.cable_distance(i, j) == full.cable_distance(i, j)


def test_subset_rejects_unknown_station():
    with pytest.raises(ValueError, match="unknown station"):
        build_testbed(seed=7, stations=[0, 99])
