"""WiFi substrate: MCS table, channel model, link behaviour."""

import numpy as np
import pytest

from repro.sim.random import RandomStreams
from repro.units import MBPS
from repro.wifi.channel import WifiChannel
from repro.wifi.link import WifiLink
from repro.wifi.phy import MCS_TABLE_2SS, select_mcs, throughput_from_snr


def test_mcs_table_shape():
    assert len(MCS_TABLE_2SS) == 16
    assert MCS_TABLE_2SS[15].phy_rate_bps == 130 * MBPS  # paper's max (§4.1)
    rates = [e.phy_rate_bps for e in MCS_TABLE_2SS[8:]]
    assert rates == sorted(rates)


def test_select_mcs_monotone_and_bounded():
    prev_rate = 0.0
    for snr in np.linspace(-5, 40, 60):
        entry = select_mcs(float(snr))
        assert entry.phy_rate_bps >= prev_rate
        prev_rate = entry.phy_rate_bps
    assert select_mcs(50.0).index == 15
    assert select_mcs(-10.0).index == -1
    assert select_mcs(-10.0).phy_rate_bps == 0.0


def test_throughput_from_snr_scales_with_availability():
    full = throughput_from_snr(30.0, availability=1.0)
    half = throughput_from_snr(30.0, availability=0.5)
    assert half == pytest.approx(full / 2)
    with pytest.raises(ValueError):
        throughput_from_snr(30.0, availability=1.5)


def _channel(streams, d, name="1->2"):
    return WifiChannel((0.0, 0.0), (d, 0.0), streams, name=name)


def test_snr_decreases_with_distance(streams):
    snrs = [_channel(streams, d, name=f"d{d}").mean_snr_db()
            for d in (3.0, 10.0, 30.0)]
    # Shadowing varies per link, but 10x distance is ~37 dB: ordering holds.
    assert snrs[0] > snrs[2]


def test_links_die_beyond_35m(testbed, t_work):
    """§4.1: no wireless connectivity beyond ~35 m."""
    dead = 0
    total = 0
    for i, j in testbed.all_pairs():
        if testbed.air_distance(i, j) >= 38.0:
            total += 1
            if not testbed.wifi_link(i, j).is_connected(t_work):
                dead += 1
    assert total > 0
    assert dead / total > 0.8


def test_shadowing_is_reciprocal_but_fading_is_not(streams, t_work):
    fwd = WifiChannel((0, 0), (12, 0), streams, name="5->6")
    rev = WifiChannel((12, 0), (0, 0), streams, name="6->5")
    assert fwd._shadowing_db == rev._shadowing_db
    # Instantaneous states differ (independent fading draws).
    assert fwd.state(t_work).snr_db != rev.state(t_work).snr_db


def test_busy_hours_increase_variability(streams):
    clockless = WifiChannel((0, 0), (10, 0), streams, name="7->8")
    from repro.sim.clock import MainsClock
    busy_t = MainsClock.at(day=1, hour=11)
    quiet_t = MainsClock.at(day=1, hour=23)
    busy = [clockless.state(busy_t + k * 0.13).snr_db for k in range(300)]
    quiet = [clockless.state(quiet_t + k * 0.13).snr_db for k in range(300)]
    assert np.std(busy) > np.std(quiet)


def test_wifi_link_sample_consistency(testbed, t_work):
    link = testbed.wifi_link(0, 1)
    s = link.sample(t_work)
    assert s.mcs_index >= -1
    assert s.phy_rate_bps >= 0
    assert s.throughput_bps >= 0
    assert s.throughput_mbps == s.throughput_bps / MBPS


def test_wifi_throughput_variance_exceeds_plc(testbed, t_work):
    """Fig. 3/4's core contrast: σ_W ≫ σ_P on short good links."""
    wifi = testbed.wifi_link(0, 1)
    plc = testbed.plc_link(0, 1)
    ts = np.arange(t_work, t_work + 60, 0.1)
    w = np.array([wifi.throughput_bps(float(t)) for t in ts])
    p = np.array([plc.throughput_bps(float(t)) for t in ts])
    assert w.std() > 2 * p.std()
