"""Interference-aware metrics (§8's future-work extension)."""

import pytest

from repro.core.interference import (
    AirtimeReport,
    airtime_report,
    available_bandwidth_bps,
    contention_aware_ett_s,
)
from repro.plc.frames import SofDelimiter
from repro.plc.sniffer import capture_saturated


def _sof(t, src, duration):
    return SofDelimiter(timestamp=t, src=src, dst="x", tmi=1, ble_bps=1e8,
                        slot=0, n_pbs=10, duration_s=duration)


def test_airtime_report_partitions_own_and_foreign():
    sofs = [_sof(0.0, "me", 0.002), _sof(0.01, "other", 0.003),
            _sof(0.02, "other", 0.001)]
    report = airtime_report(sofs, window_s=0.1, own_station="me")
    assert report.own_airtime_s == pytest.approx(0.002)
    assert report.foreign_airtime_s == pytest.approx(0.004)
    assert report.busy_fraction == pytest.approx(0.06)
    assert report.foreign_fraction == pytest.approx(0.04)
    assert report.idle_fraction == pytest.approx(0.94)


def test_airtime_report_validation():
    with pytest.raises(ValueError):
        airtime_report([], window_s=0.0, own_station="me")
    with pytest.raises(ValueError):
        AirtimeReport(window_s=1.0, own_airtime_s=-1.0,
                      foreign_airtime_s=0.0)


def test_available_bandwidth_scales_with_foreign_traffic():
    quiet = AirtimeReport(1.0, 0.1, 0.0)
    busy = AirtimeReport(1.0, 0.1, 0.6)
    assert available_bandwidth_bps(100e6, quiet) == pytest.approx(100e6)
    assert available_bandwidth_bps(100e6, busy) == pytest.approx(40e6)
    with pytest.raises(ValueError):
        available_bandwidth_bps(-1.0, quiet)


def test_contention_aware_ett_grows_with_interference():
    quiet = AirtimeReport(1.0, 0.0, 0.0)
    busy = AirtimeReport(1.0, 0.0, 0.5)
    base = contention_aware_ett_s(50e6, etx=1.0, report=None)
    assert contention_aware_ett_s(50e6, 1.0, quiet) == pytest.approx(base)
    assert contention_aware_ett_s(50e6, 1.0, busy) == pytest.approx(2 * base)
    assert contention_aware_ett_s(
        50e6, 1.0, AirtimeReport(1.0, 0.0, 1.0)) == float("inf")
    with pytest.raises(ValueError):
        contention_aware_ett_s(50e6, etx=0.5, report=None)


def test_saturated_neighbour_consumes_airtime(testbed, t_work):
    """A saturated neighbour's capture shows high foreign occupancy."""
    link = testbed.plc_link(0, 1)
    sofs = capture_saturated(link, t_work, 1.0, src="0", dst="1")
    # From station 2's perspective, all of that traffic is foreign.
    report = airtime_report(sofs, window_s=1.0, own_station="2")
    assert report.foreign_fraction > 0.5
    assert available_bandwidth_bps(60e6, report) < 30e6
