"""MAC layer: efficiency chain, segmentation, SACK retransmissions."""

import math

import numpy as np
import pytest

from repro.plc import mac
from repro.plc.spec import HPAV
from repro.sim.random import RandomStreams
from repro.units import MBPS


def test_1500B_packet_makes_three_pbs():
    """§8.1: 'a packet of 1500 bytes, which produces 3 PBs'."""
    assert mac.pbs_for_payload(1500, HPAV) == 3


def test_small_payload_still_occupies_one_pb():
    """§7.1 footnote: PLC always transmits at least a PB, using padding."""
    assert mac.pbs_for_payload(10, HPAV) == 1
    with pytest.raises(ValueError):
        mac.pbs_for_payload(0, HPAV)


def test_efficiency_lands_on_the_paper_fit():
    """Fig. 15: BLE = 1.7 T − 0.65 → T/BLE ≈ 1/1.7."""
    model = mac.SaturatedThroughputModel(HPAV)
    assert model.efficiency() == pytest.approx(1 / 1.7, rel=0.02)


def test_throughput_scales_linearly_with_ble():
    model = mac.SaturatedThroughputModel(HPAV)
    t1 = model.throughput_bps(50 * MBPS)
    t2 = model.throughput_bps(100 * MBPS)
    assert t2 == pytest.approx(2 * t1, rel=1e-6)
    assert model.throughput_bps(0.0) == 0.0


def test_residual_errors_reduce_throughput():
    model = mac.SaturatedThroughputModel(HPAV)
    assert model.throughput_bps(100 * MBPS, pb_err=0.2) == pytest.approx(
        0.8 * model.throughput_bps(100 * MBPS), rel=1e-6)


def test_frame_duration_has_one_symbol_floor():
    """§7.2's mechanism: a frame never takes less than one OFDM symbol."""
    d = mac.frame_duration_s(1, 150 * MBPS, 0.0, HPAV)
    assert d >= HPAV.symbol_duration_s


def test_frame_duration_caps_at_standard_limit():
    d = mac.frame_duration_s(10_000, 10 * MBPS, 0.0, HPAV)
    assert d <= HPAV.max_frame_duration_s + mac.DEFAULT_TIMINGS.preamble_fc_s


def test_frame_duration_monotone_in_pbs():
    durations = [mac.frame_duration_s(n, 100 * MBPS, 0.0, HPAV)
                 for n in (1, 5, 20)]
    assert durations == sorted(durations)
    with pytest.raises(ValueError):
        mac.frame_duration_s(0, 100 * MBPS, 0.0, HPAV)


def test_deliver_packet_error_free_is_single_shot():
    rng = RandomStreams(5).get("t")
    result = mac.deliver_packet(3, 0.0, rng)
    assert result.transmissions == 1
    assert result.pb_sends == 3


def test_deliver_packet_retransmits_only_failed_pbs():
    rng = RandomStreams(5).get("t")
    results = [mac.deliver_packet(3, 0.4, rng) for _ in range(500)]
    # SACK selectivity: total PB copies < transmissions × 3 on average.
    mean_sends = np.mean([r.pb_sends for r in results])
    mean_tx = np.mean([r.transmissions for r in results])
    assert mean_sends < mean_tx * 3


def test_deliver_packet_rejects_bad_pb_err():
    rng = RandomStreams(5).get("t")
    with pytest.raises(ValueError):
        mac.deliver_packet(3, 1.0, rng)


def test_expected_transmissions_closed_form_matches_simulation():
    rng = RandomStreams(6).get("t")
    p = 0.3
    sim = np.mean([mac.deliver_packet(3, p, rng).transmissions
                   for _ in range(4000)])
    assert mac.expected_transmissions(3, p) == pytest.approx(sim, rel=0.05)


def test_expected_transmissions_edge_cases():
    assert mac.expected_transmissions(3, 0.0) == 1.0
    assert mac.expected_transmissions(3, 1.0) == float("inf")
    assert mac.expected_transmissions(1, 0.5) == pytest.approx(2.0, rel=1e-6)


def test_transmission_std_grows_with_pb_err():
    """Fig. 22: higher U-ETX comes with higher variance."""
    stds = [mac.transmission_count_std(3, p) for p in (0.05, 0.2, 0.5)]
    assert stds == sorted(stds)
    assert mac.transmission_count_std(3, 0.0) == 0.0


def test_aggregator_two_level_aggregation():
    agg = mac.FrameAggregator(HPAV, aggregation_timer_s=0.2)
    assert len(agg) == 0
    agg.enqueue_packet(1500, now=0.0)
    assert len(agg) == 3
    # Not enough PBs for a full frame yet and timer not expired.
    assert not agg.frame_ready(0.05, 100 * MBPS)
    # Timer fires 200 ms after the first PB arrival (Fig. 1).
    assert agg.frame_ready(0.25, 100 * MBPS)
    assert agg.pop_frame(100 * MBPS) == 3


def test_aggregator_full_frame_triggers_immediately():
    agg = mac.FrameAggregator(HPAV)
    max_pbs = HPAV.max_pbs_per_frame(100 * MBPS)
    for k in range(math.ceil(max_pbs / 3) + 1):
        agg.enqueue_packet(1500, now=0.0)
    assert agg.frame_ready(0.0, 100 * MBPS)
    assert agg.pop_frame(100 * MBPS) == max_pbs


def test_aggregator_pop_empty_raises():
    agg = mac.FrameAggregator(HPAV)
    with pytest.raises(RuntimeError):
        agg.pop_frame(100 * MBPS)


def test_csma_tables_match_1901():
    """CW and DC ladders from the standard (ref [19])."""
    assert mac.CSMA_CW == (8, 16, 32, 64)
    assert mac.CSMA_DC == (0, 1, 3, 15)
