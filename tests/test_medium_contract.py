"""Conformance suite for the ``repro.medium`` Link contract.

Three guarantees, for every link type (physical PLC, physical WiFi, and
the synthetic two-metric model):

* ``sample_series(ts)`` equals the per-``t`` ``sample`` loop **exactly**
  (bit-for-bit, every column), in both ``measured`` modes;
* series are deterministic functions of the world seed (and of seeds
  derived through :func:`repro.sim.random.derive_seed`);
* no consumer outside the ``plc``/``wifi`` packages imports channel/PHY
  internals — capacities flow only through the contract.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.core.metrics import LinkMetricRecord
from repro.core.two_metric_model import (
    TwoMetricLinkModel,
    TwoMetricParameters,
)
from repro.medium.link import Link, series_from_samples
from repro.medium.registry import (
    constituent_media,
    get_medium,
    known_media,
    registered_media,
)
from repro.netsim.scenario import FlowRequest
from repro.sim.random import RandomStreams, derive_seed
from repro.testbed.builder import build_testbed
from repro.testbed.experiments import night_start, working_hours_start
from repro.wifi.link import CAPACITY_PROBE_COUNT

_TM_PARAMS = TwoMetricParameters(
    slot_ble_bps=(80e6, 95e6, 110e6, 90e6, 85e6, 100e6),
    jitter_sigma_rel=0.05,
    jitter_hold_s=2.0,
    pb_err_base=0.02,
    pb_err_spread=0.8)


def _two_metric(seed: int) -> TwoMetricLinkModel:
    return TwoMetricLinkModel(_TM_PARAMS, RandomStreams(seed=seed),
                              name="tm-0-1")


@pytest.fixture(scope="module")
def world_pair():
    """Two independently built but identically seeded testbeds.

    The conformance tests drive one through the batch path and one
    through the scalar path; because the contract is exact (including
    noise-stream consumption), the worlds stay in lockstep across tests.
    """
    return build_testbed(seed=11), build_testbed(seed=11)


def _link_pair(kind: str, world_pair):
    if kind == "two-metric":
        return _two_metric(11), _two_metric(11)
    tb_a, tb_b = world_pair
    getter = {"plc": "plc_link", "wifi": "wifi_link"}[kind]
    return getattr(tb_a, getter)(0, 1), getattr(tb_b, getter)(0, 1)


def _grid(n_work: int, n_night: int, step: float) -> np.ndarray:
    """A time grid spanning both busy and quiet regimes, with a step
    incommensurate with the channels' block/jitter intervals."""
    return np.concatenate([
        working_hours_start() + np.arange(n_work) * step,
        night_start() + np.arange(n_night) * step])


#: Grid sizes per kind: PLC's scalar path is the slow one, keep it short.
GRIDS = {
    "plc": _grid(18, 18, 0.37),
    "wifi": _grid(120, 120, 0.05),
    "two-metric": _grid(60, 60, 0.11),
}


@pytest.mark.parametrize("measured", [False, True])
@pytest.mark.parametrize("kind", ["plc", "wifi", "two-metric"])
def test_sample_series_matches_scalar_loop(kind, measured, world_pair):
    """The contract's core promise: batch ≡ scalar, exactly."""
    link_batch, link_scalar = _link_pair(kind, world_pair)
    ts = GRIDS[kind]
    batch = link_batch.sample_series(ts, measured=measured)
    reference = series_from_samples(
        [link_scalar.sample(float(t), measured=measured) for t in ts],
        name=link_scalar.name, medium=link_scalar.medium)
    assert batch.medium == reference.medium == link_scalar.medium
    assert batch.data.dtype == reference.data.dtype
    assert len(batch) == len(ts)
    for field in reference.data.dtype.names:
        assert np.array_equal(batch.data[field], reference.data[field]), (
            f"{kind}: column {field!r} differs between sample_series and "
            f"the scalar sample loop (measured={measured})")


@pytest.mark.parametrize("kind", ["plc", "wifi", "two-metric"])
def test_link_satisfies_protocol(kind, world_pair):
    link = _link_pair(kind, world_pair)[0]
    assert isinstance(link, Link)
    assert link.medium in registered_media()


def test_series_deterministic_under_derived_seeds():
    """Equal (derived) seeds ⇒ byte-identical series; different ⇒ not."""
    ts = GRIDS["two-metric"]
    seed_a = derive_seed(7, "medium-contract", "world")
    seed_b = derive_seed(7, "medium-contract", "other")
    first = _two_metric(seed_a).sample_series(ts).data.tobytes()
    replay = _two_metric(seed_a).sample_series(ts).data.tobytes()
    other = _two_metric(seed_b).sample_series(ts).data.tobytes()
    assert first == replay
    assert first != other


def test_metric_series_projection(world_pair):
    """A LinkSeries column projects into the analysis layer's container."""
    link = world_pair[0].wifi_link(0, 1)
    ts = GRIDS["wifi"][:40]
    series = link.sample_series(ts, measured=False)
    metric = series.to_metric_series("capacity_bps")
    assert np.array_equal(metric.times, ts)
    assert np.array_equal(metric.values, series.capacity_bps)
    assert metric.name.endswith(":capacity_bps")


# --- registry ------------------------------------------------------------------


def test_registry_surface():
    assert registered_media() == ("plc", "wifi")
    assert set(known_media()) == {"plc", "wifi", "hybrid"}
    assert constituent_media("hybrid") == ("plc", "wifi")
    assert constituent_media("wifi") == ("wifi",)
    with pytest.raises(KeyError):
        get_medium("hybrid")  # composite: not an elemental medium
    with pytest.raises(KeyError):
        get_medium("li-fi")
    with pytest.raises(KeyError):
        constituent_media("li-fi")


def test_registry_link_lookup(world_pair):
    tb = world_pair[0]
    plc = tb.link("plc", 0, 1)
    wifi = tb.link("wifi", 0, 1)
    assert plc.medium == "plc"
    assert wifi is tb.wifi_link(0, 1)
    with pytest.raises(KeyError):
        tb.link("hybrid", 0, 1)  # composites have no single link


def test_flow_request_medium_validated_by_registry():
    with pytest.raises(ValueError, match="li-fi"):
        FlowRequest("f", 0, 1, 0.0, medium="li-fi", duration_s=1.0)


def test_metric_record_medium_validated_by_registry():
    with pytest.raises(ValueError, match="hybrid"):
        LinkMetricRecord(time=0.0, src="0", dst="1", medium="hybrid",
                         capacity_bps=1.0)


# --- WiFi capacity probe window (fixed-count regression) ----------------------


def test_capacity_probe_count_is_fixed(world_pair):
    link = world_pair[0].wifi_link(0, 1)
    awkward = [0.0, 223200.1, 1.0e6 + 0.37, 36013669.4291844]
    for t in awkward:
        probes = link.capacity_probe_times(t)
        assert len(probes) == CAPACITY_PROBE_COUNT
        assert probes[-1] == pytest.approx(t)
        assert probes[0] == pytest.approx(t - 1.0 + 0.1)
        assert np.all(np.diff(probes) > 0)
    # The arange formula this replaces silently drops to 9 samples once
    # float error at large t pushes the last point past the endpoint.
    t = 36013669.4291844
    assert len(np.arange(t - 1.0 + 0.1, t + 1e-9, 0.1)) == 9


def test_aggregator_estimates_through_link_contract(world_pair):
    """The hybrid device's probe is exactly the links' own capacity_bps."""
    from repro.hybrid.aggregator import HybridDevice

    tb = world_pair[0]
    plc, wifi = tb.plc_link(0, 1), tb.wifi_link(0, 1)
    device = HybridDevice(plc, wifi, tb.streams)
    t = working_hours_start()
    estimates = device.estimate_capacities_bps(t)
    assert estimates == {"plc": max(plc.capacity_bps(t), 0.0),
                         "wifi": max(wifi.capacity_bps(t), 0.0)}


# --- architectural boundary ---------------------------------------------------

_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
_BANNED_IMPORT = re.compile(
    r"^\s*(?:from|import)\s+repro\.(?:plc|wifi)\.(?:channel|phy)\b",
    re.MULTILINE)


def test_no_channel_internals_outside_media_packages():
    """Consumers compute capacities only through the Link contract: no
    module outside ``repro.plc``/``repro.wifi`` may import the channel
    or PHY internals."""
    offenders = []
    for path in sorted(_SRC.rglob("*.py")):
        rel = path.relative_to(_SRC)
        if rel.parts[0] in ("plc", "wifi"):
            continue
        if _BANNED_IMPORT.search(path.read_text(encoding="utf-8")):
            offenders.append(str(rel))
    assert offenders == [], (
        f"channel/PHY internals imported outside the medium packages: "
        f"{offenders}")
