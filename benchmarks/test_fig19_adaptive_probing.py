"""Fig. 19: estimation-error CDF for quality-adaptive probing.

Paper: BLE traces of all links at 50 ms resolution; three policies compared —
probe everything per 5 s, probe everything per 80 s, and the paper's method
(bad links per 5 s, average 8× slower, good 16× slower, thresholds 60 and
100 Mbps). Shapes: the adaptive method's error CDF hugs the per-5 s curve
while cutting ~32 % of the probing overhead; per-80 s is clearly worse.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.estimation_error import compare_policies
from repro.testbed.experiments import poll_ble_series
from repro.units import MBPS


def test_fig19_accuracy_vs_overhead(testbed, t_night, once):
    def experiment():
        traces = {}
        # One direction per pair: 50 ms BLE traces of 170 s each (the
        # estimators are interval-relative).
        pairs = [p for p in testbed.same_board_pairs() if p[0] < p[1]]
        for (i, j) in pairs:
            link = testbed.plc_link(i, j)
            if not link.is_connected(t_night):
                continue
            traces[f"{i}-{j}"] = poll_ble_series(testbed, i, j, t_night,
                                                 250.0)
        return compare_policies(traces, base_interval_s=5.0,
                                slow_interval_s=80.0)

    results = once(experiment)
    grid = np.linspace(0, 20 * MBPS, 21)
    rows = []
    for key in ("ours", "fast", "slow"):
        r = results[key]
        cdf = r.error_cdf(grid)
        rows.append([r.policy_name, r.overhead_bps / 1e3,
                     r.percentile_bps(50) / MBPS,
                     r.percentile_bps(90) / MBPS,
                     float(cdf[5])])  # F(5 Mbps)
    print()
    print(format_table(
        ["policy", "overhead (kbps)", "p50 err (Mbps)", "p90 err (Mbps)",
         "F(5 Mbps)"],
        rows, title="Fig. 19 — estimation error vs probing overhead"))

    ours, fast, slow = results["ours"], results["fast"], results["slow"]
    reduction = 1.0 - ours.overhead_bps / fast.overhead_bps
    print(f"overhead reduction vs per-5s probing: {100 * reduction:.0f}% "
          f"(paper: 32%)")

    # Shapes: large overhead cut, accuracy near the fast baseline, slow
    # probing clearly worse. Our simulated floor is healthier than the
    # paper's building (more links classify as good at night), so the
    # reduction lands above their 32% — the mechanism is identical.
    assert 0.15 < reduction < 0.95
    # CDF comparison at a fixed error (robust to per-policy sample counts):
    # ours tracks the fast baseline and beats slow probing.
    for err in (1 * MBPS, 2 * MBPS, 5 * MBPS):
        f_ours = ours.error_cdf([err])[0]
        f_fast = fast.error_cdf([err])[0]
        f_slow = slow.error_cdf([err])[0]
        assert f_ours >= f_slow - 0.03
        assert f_ours >= f_fast - 0.15
