"""Fig. 20: bandwidth aggregation with capacity-aware load balancing.

Paper, left panel: on one link, four back-to-back runs — WiFi only, PLC
only, the capacity-proportional hybrid, and round-robin. The hybrid reaches
~the sum of both capacities; round-robin is pinned near twice the slower
medium. Right panel: 600 MB download completion times on 13 links, WiFi-only
vs hybrid — drastic reductions.

The left panel needs a pair where both media are alive but imbalanced (the
paper's link 0-4 had WiFi ≈ 12 Mbps vs PLC ≈ 35); we select such a pair
from the testbed the same way the authors picked theirs.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.hybrid import HybridDevice
from repro.traffic.iperf import completion_time_s
from repro.units import MBPS

DOWNLOAD_BYTES = 600 * 10 ** 6
RIGHT_PANEL_LINKS = [(0, 9), (0, 5), (9, 0), (9, 6), (9, 7), (3, 9),
                     (1, 6), (1, 8), (2, 11), (2, 5), (6, 1), (6, 2),
                     (7, 9)]


class _HybridThroughput:
    """Adapter: expose the bonded pair as throughput_bps(t) for iperf."""

    def __init__(self, device):
        self.device = device

    def throughput_bps(self, t):
        return self.device.hybrid_goodput_bps(t)


def _mean_thr(link, t0, n=10, step=0.5):
    return float(np.mean([link.throughput_bps(t0 + k * step,
                                              measured=False)
                          for k in range(n)]))


def _pick_imbalanced_pair(testbed, t0):
    """Both media alive, PLC 2.5-6x faster than WiFi (paper's 0-4 regime)."""
    for i, j in testbed.same_board_pairs():
        plc = _mean_thr(testbed.plc_link(i, j), t0)
        wifi = _mean_thr(testbed.wifi_link(i, j), t0)
        if wifi > 5e6 and 2.5 * wifi < plc < 6.0 * wifi:
            return (i, j)
    raise RuntimeError("no suitably imbalanced pair found")


def test_fig20_left_modes(testbed, t_work, once):
    def experiment():
        pair = _pick_imbalanced_pair(testbed, t_work)
        device = HybridDevice(testbed.plc_link(*pair),
                              testbed.wifi_link(*pair), testbed.streams)
        out = {mode: device.run_saturated(mode, t_work, 60.0).mean_mbps
               for mode in ("wifi", "plc", "round-robin", "hybrid")}
        return pair, out

    pair, results = once(experiment)
    print()
    print(format_table(
        ["mode", "throughput (Mbps)"], sorted(results.items()),
        title=f"Fig. 20 (left) — link {pair[0]}-{pair[1]}, "
              f"four back-to-back runs"))

    assert results["hybrid"] > results["plc"]
    assert results["hybrid"] > results["wifi"]
    assert results["hybrid"] > 0.8 * (results["plc"] + results["wifi"])
    # Round-robin pinned near 2x the slower medium, clearly below hybrid.
    assert results["round-robin"] <= 2.5 * min(results["plc"],
                                               results["wifi"])
    assert results["hybrid"] > 1.2 * results["round-robin"]


def test_fig20_right_completion_times(testbed, t_work, once):
    def experiment():
        rows = []
        for (i, j) in RIGHT_PANEL_LINKS:
            wifi = testbed.wifi_link(i, j)
            device = HybridDevice(testbed.plc_link(i, j), wifi,
                                  testbed.streams)
            try:
                t_wifi = completion_time_s(wifi, t_work, DOWNLOAD_BYTES,
                                           max_time_s=4000.0)
            except RuntimeError:
                t_wifi = float("inf")
            t_hybrid = completion_time_s(
                _HybridThroughput(device), t_work, DOWNLOAD_BYTES,
                max_time_s=4000.0)
            rows.append((f"{i}-{j}", t_wifi, t_hybrid))
        return rows

    rows = once(experiment)
    print()
    print(format_table(
        ["link", "WiFi only (s)", "hybrid (s)"],
        [[n, w if np.isfinite(w) else "stalled", h] for n, w, h in rows],
        title="Fig. 20 (right) — 600 MB download completion times"))

    finite = [(w, h) for _, w, h in rows if np.isfinite(w)]
    assert len(finite) >= 5
    # The hybrid never loses materially (worst case: both media nearly
    # dead, where split mis-estimates cost a few percent), and the typical
    # gain is drastic.
    assert all(h < 1.15 * w for w, h in finite)
    speedups = [w / h for w, h in finite]
    assert np.median(speedups) > 1.3
    assert max(speedups) > 2.0
    # Links with no WiFi at all complete only thanks to PLC.
    stalled = [h for _, w, h in rows if not np.isfinite(w)]
    assert all(np.isfinite(h) for h in stalled)
