"""Ablation: the two-metric abstraction vs the full physical simulator.

§2.2's claim — "the MAC and PHY layers can be modeled using only two
metrics: PBerr and BLE_s" — validated quantitatively: fit the two-metric
model on one measurement window per link, then compare physical vs
synthetic statistics (throughput mean/σ, U-ETX) on a *different* window,
across a quality-diverse link set.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.two_metric_model import (
    TwoMetricLinkModel,
    compare_models,
    fit_two_metric_model,
)
from repro.units import MBPS

LINKS = [(13, 14), (15, 18), (0, 1), (1, 2), (2, 7), (0, 4), (6, 5),
         (11, 4)]


def test_ablation_two_metric_abstraction(testbed, t_night, once):
    def experiment():
        rows = []
        for (i, j) in LINKS:
            link = testbed.plc_link(i, j)
            params = fit_two_metric_model(link, t_night, duration=40.0)
            model = TwoMetricLinkModel(params, testbed.streams,
                                       name=f"abl-{i}-{j}")
            stats = compare_models(link, model, t_night + 60.0,
                                   duration=40.0)
            rows.append((f"{i}-{j}", stats))
        return rows

    rows = once(experiment)
    table = []
    errors_mean = []
    errors_std = []
    for name, s in rows:
        if s["physical_mean_bps"] <= 0:
            continue
        rel_mean = abs(s["synthetic_mean_bps"] - s["physical_mean_bps"]) \
            / s["physical_mean_bps"]
        errors_mean.append(rel_mean)
        if s["physical_std_bps"] > 0:
            errors_std.append(
                abs(s["synthetic_std_bps"] - s["physical_std_bps"])
                / s["physical_std_bps"])
        table.append([name, s["physical_mean_bps"] / MBPS,
                      s["synthetic_mean_bps"] / MBPS,
                      s["physical_std_bps"] / MBPS,
                      s["synthetic_std_bps"] / MBPS,
                      s["physical_u_etx"], s["synthetic_u_etx"]])
    print()
    print(format_table(
        ["link", "T phys", "T synth", "std phys", "std synth",
         "U-ETX phys", "U-ETX synth"],
        table, title="Ablation — two-metric abstraction vs full simulator"))

    # The abstraction reproduces first moments tightly and spreads loosely.
    assert np.median(errors_mean) < 0.10
    assert max(errors_mean) < 0.30
    assert np.median(errors_std) < 0.8
    # U-ETX: within 25 % on every link.
    for name, s in rows:
        assert abs(s["synthetic_u_etx"] - s["physical_u_etx"]) \
            < 0.25 * s["physical_u_etx"] + 0.05, name
