"""Benchmark fixtures and the ``bench`` marker.

Two benchmark populations live here:

* **figure/table regenerations** — each reruns one paper experiment
  exactly once via ``benchmark.pedantic(..., rounds=1, iterations=1)``
  (pytest-benchmark); the timing records the cost of regenerating that
  figure. Run with ``pytest benchmarks/ --benchmark-only -s``.
* **harness benchmarks** — thin pytest surfaces over
  :mod:`repro.bench` (the ``medium.*``/``runner.*``/``obs.*``/
  ``campaign.*``/``meta.*`` specs), multi-repeat and regression-gated
  against ``benchmarks/baselines/`` in CI.

Everything collected under ``benchmarks/`` carries the ``bench`` marker
(registered in ``pyproject.toml`` and here for standalone rootdirs), so
``pytest -m "not bench"`` deselects the lot from any mixed run.
"""

from __future__ import annotations

import pytest

from repro.testbed import HPAV500_PRESET, build_testbed
from repro.testbed.experiments import night_start, working_hours_start


def pytest_configure(config):
    # Benchmarks live outside the default testpaths; register the
    # marker here too so `pytest benchmarks/` from a bare rootdir never
    # warns about (or strict-fails on) an unknown marker.
    config.addinivalue_line(
        "markers",
        "bench: performance benchmarks under benchmarks/ "
        "(figure regenerations and repro.bench harness runs); "
        "deselect with -m 'not bench'")


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def testbed():
    return build_testbed(seed=7)


@pytest.fixture(scope="session")
def testbed_av500():
    return build_testbed(seed=7, preset=HPAV500_PRESET)


@pytest.fixture(scope="session")
def t_work():
    return working_hours_start()


@pytest.fixture(scope="session")
def t_night():
    return night_start()


def run_once(benchmark, func):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    def _run(func):
        return run_once(benchmark, func)
    return _run
