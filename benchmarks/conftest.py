"""Benchmark fixtures.

Every benchmark regenerates one table or figure of the paper. Experiments
are expensive simulations, so each runs exactly once via
``benchmark.pedantic(..., rounds=1, iterations=1)``; the pytest-benchmark
timing then records the cost of regenerating that figure.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the printed
tables/series next to the timings.
"""

from __future__ import annotations

import pytest

from repro.testbed import HPAV500_PRESET, build_testbed
from repro.testbed.experiments import night_start, working_hours_start


def pytest_configure(config):
    # Benchmarks live outside the default testpaths; make sure running
    # `pytest benchmarks/` without --benchmark-only still works.
    pass


@pytest.fixture(scope="session")
def testbed():
    return build_testbed(seed=7)


@pytest.fixture(scope="session")
def testbed_av500():
    return build_testbed(seed=7, preset=HPAV500_PRESET)


@pytest.fixture(scope="session")
def t_work():
    return working_hours_start()


@pytest.fixture(scope="session")
def t_night():
    return night_start()


def run_once(benchmark, func):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    def _run(func):
        return run_once(benchmark, func)
    return _run
