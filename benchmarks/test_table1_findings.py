"""Table 1: the paper's findings summary, regenerated as one scoreboard.

Each row of Table 1 maps to a quick quantitative check against the
simulated testbed. The heavyweight versions of these checks live in the
per-figure benchmarks; this bench is the one-screen summary.
"""

import numpy as np

from repro.analysis.asymmetry import asymmetry_report
from repro.analysis.reporting import format_table
from repro.analysis.stats import pearson
from repro.core.variation import cycle_scale_stats
from repro.testbed.experiments import poll_ble_series
from repro.units import MBPS


def test_table1_findings_scoreboard(testbed, t_work, t_night, once):
    def experiment():
        findings = {}

        # -- WiFi vs PLC (short instantaneous survey) ------------------
        plc, wifi, dist = {}, {}, {}
        for i, j in testbed.same_board_pairs():
            link = testbed.plc_link(i, j)
            plc[(i, j)] = np.mean(
                [link.throughput_bps(t_work + k, measured=False)
                 for k in range(5)]) / MBPS
            w = testbed.wifi_link(i, j)
            wifi[(i, j)] = np.mean(
                [w.throughput_bps(t_work + k * 0.3, measured=False)
                 for k in range(15)]) / MBPS
            dist[(i, j)] = testbed.air_distance(i, j)
        short = [(p, w) for (k, p), (_, w) in
                 zip(plc.items(), wifi.items()) if dist[k] < 15.0]
        findings["short-range WiFi wins"] = float(np.mean(
            [w > p for p, w in short]))
        far = {k for k, d in dist.items() if d > 35.0}
        findings["blind spots covered by PLC"] = float(np.mean(
            [plc[k] > 5.0 for k in far]))

        # -- asymmetry ---------------------------------------------------
        findings["severe asymmetry fraction"] = asymmetry_report(
            plc, threshold=1.5).severe_fraction

        # -- quality vs variability (cycle scale, night) ------------------
        stats = []
        for (i, j) in [(13, 14), (15, 18), (0, 1), (1, 2), (2, 7),
                       (11, 4), (6, 5), (9, 5)]:
            series = poll_ble_series(testbed, i, j, t_night, 45)
            stats.append(cycle_scale_stats(series))
        findings["corr(quality, variability)"] = pearson(
            [s.mean_ble_bps for s in stats],
            [s.std_ble_bps for s in stats])

        # -- random scale: load depresses quality --------------------------
        link = testbed.plc_link(0, 3)
        day = np.mean([link.avg_ble_bps(t_work + k * 60) for k in range(30)])
        night = np.mean([link.avg_ble_bps(t_night + k * 60)
                         for k in range(30)])
        findings["night/day BLE ratio"] = night / day
        return findings

    findings = once(experiment)
    print()
    print(format_table(
        ["finding (Table 1)", "expected", "measured"],
        [
            ["WiFi faster at short range (fraction)", ">0.5",
             findings["short-range WiFi wins"]],
            ["PLC covers WiFi blind spots (fraction)", "~1",
             findings["blind spots covered by PLC"]],
            ["pairs with >1.5x asymmetry", "~0.3",
             findings["severe asymmetry fraction"]],
            ["corr(link quality, variability)", "strongly negative",
             findings["corr(quality, variability)"]],
            ["night/day BLE ratio (electrical load)", ">1",
             findings["night/day BLE ratio"]],
        ],
        title="Table 1 — findings scoreboard"))

    assert findings["short-range WiFi wins"] > 0.5
    assert findings["blind spots covered by PLC"] > 0.7
    assert 0.15 < findings["severe asymmetry fraction"] < 0.55
    assert findings["corr(quality, variability)"] < -0.3
    assert findings["night/day BLE ratio"] > 1.02
