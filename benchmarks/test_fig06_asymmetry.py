"""Fig. 6 + §5: PLC throughput asymmetry.

Paper: ~30 % of pairs show > 1.5× asymmetry; Fig. 6 lists 11 example links
whose reverse direction delivers < 60 % of the forward direction.
"""

import numpy as np

from repro.analysis.asymmetry import asymmetry_report
from repro.analysis.reporting import format_table
from repro.units import MBPS


def test_fig06_throughput_asymmetry(testbed, t_work, once):
    def experiment():
        fwd = {}
        for i, j in testbed.same_board_pairs():
            link = testbed.plc_link(i, j)
            fwd[(i, j)] = float(np.mean(
                [link.throughput_bps(t_work + k * 2.0, measured=False)
                 for k in range(10)])) / MBPS
        return fwd

    fwd = once(experiment)
    report = asymmetry_report(fwd, threshold=1.5)
    pair_names = []
    ratios = {}
    seen = set()
    for (i, j) in sorted(fwd):
        if (j, i) in seen:
            continue
        seen.add((i, j))
        hi = max(fwd[(i, j)], fwd[(j, i)])
        lo = min(fwd[(i, j)], fwd[(j, i)])
        if hi >= 0.5:
            pair_names.append(f"{i}-{j}")
            ratios[f"{i}-{j}"] = (fwd[(i, j)], fwd[(j, i)],
                                  hi / max(lo, 0.5))

    worst = sorted(ratios.items(), key=lambda kv: -kv[1][2])[:11]
    print()
    print(format_table(
        ["link x-y", "x->y Mbps", "y->x Mbps", "ratio"],
        [[name, f, r, ratio] for name, (f, r, ratio) in worst],
        title="Fig. 6 — most asymmetric PLC links"))
    print(f"pairs with >1.5x asymmetry: "
          f"{100 * report.severe_fraction:.0f}% (paper: ~30%)")

    assert 0.15 < report.severe_fraction < 0.55
    # Fig. 6's examples: reverse < 60 % of forward on the worst links.
    top = worst[0][1]
    assert min(top[0], top[1]) < 0.6 * max(top[0], top[1])
    assert len([1 for _, (_, _, r) in worst if r > 1.5]) >= 8
