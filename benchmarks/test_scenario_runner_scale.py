"""Scenario-runner scale benchmark: nine flows, ten minutes.

The ROADMAP's north star is serving large multi-flow capacity questions
fast. This benchmark times the fluid runner's hot path — per-quantum
link-capacity lookups — on a nine-flow, ten-minute mixed scenario
(saturated PLC on two boards, CBR, a hybrid bond, WiFi) and asserts the
shared windowed cache keeps the loop fast and work-conserving. The seed
runner recomputed every capacity from the channel model each quantum
(~25 s for this scenario); the cache-backed runner is ~10x faster.
"""

from repro.netsim import FlowRequest, Scenario, ScenarioRunner
from repro.units import MBPS

SATURATED_PAIRS = [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (13, 14)]


def _nine_flow_scenario(t0):
    scenario = Scenario("bench9")
    for k, (i, j) in enumerate(SATURATED_PAIRS):
        scenario.add(FlowRequest(f"sat{k}", i, j, t0, duration_s=600.0))
    scenario.add(FlowRequest("cbr0", 6, 7, t0, kind="cbr",
                             rate_bps=2 * MBPS, duration_s=600.0))
    scenario.add(FlowRequest("hyb", 8, 9, t0, medium="hybrid",
                             duration_s=600.0))
    scenario.add(FlowRequest("wifi0", 13, 14, t0, medium="wifi",
                             duration_s=600.0))
    return scenario


def test_nine_flows_ten_minutes(testbed, t_work, once):
    def experiment():
        runner = ScenarioRunner(testbed, check_invariants=True)
        results = runner.run(_nine_flow_scenario(t_work))
        return runner, results

    runner, results = once(experiment)
    stats = runner.stats
    assert stats.quanta == 1200
    assert stats.cache.hit_rate > 0.8       # 5 s window, 0.5 s quantum
    assert stats.invariant_violations == 0
    assert stats.max_domain_airtime <= 1.0 + 1e-6
    assert results["cbr0"].mean_rate_bps <= 2 * MBPS * (1 + 1e-9)
    assert all(r.delivered_bytes > 0 for r in results.values())
