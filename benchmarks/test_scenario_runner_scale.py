"""Scenario-runner scale benchmark: nine flows, ten minutes.

The ROADMAP's north star is serving large multi-flow capacity questions
fast. This benchmark times the fluid runner's hot path — per-quantum
link-capacity lookups — on a nine-flow, ten-minute mixed scenario
(saturated PLC on two boards, CBR, a hybrid bond, WiFi) and asserts the
shared windowed cache keeps the loop fast and work-conserving. The seed
runner recomputed every capacity from the channel model each quantum
(~25 s for this scenario); the cache-backed runner is ~10x faster.

It also guards the observability layer's cost: running the same scenario
with tracing *and* profiling enabled must stay within
:data:`MAX_TRACING_OVERHEAD` of the untraced wall time. Set
``BENCH_OBS_JSON=<path>`` to write the comparison as JSON; CI uploads it
as the ``BENCH_obs`` artifact.
"""

import json
import os
import time

from repro.netsim import FlowRequest, Scenario, ScenarioRunner
from repro.obs import MetricsRegistry, Profiler, Tracer
from repro.units import MBPS

#: Acceptance ceiling: tracing + profiling may slow the runner by < 5%.
MAX_TRACING_OVERHEAD = 0.05

#: Timing reps per variant for the overhead comparison. The paired runs
#: are interleaved and min-of-reps taken: the minimum converges on the
#: true compute floor, and interleaving makes scheduler noise and
#: thermal drift hit both variants alike. Many short runs beat few long
#: ones for this — the floor estimate tightens with rep count.
OVERHEAD_REPS = 10

#: Horizon of each overhead rep (240 quanta — long enough that per-run
#: setup is negligible, short enough to afford OVERHEAD_REPS pairs).
OVERHEAD_HORIZON_S = 120.0

SATURATED_PAIRS = [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (13, 14)]


def _nine_flow_scenario(t0):
    scenario = Scenario("bench9")
    for k, (i, j) in enumerate(SATURATED_PAIRS):
        scenario.add(FlowRequest(f"sat{k}", i, j, t0, duration_s=600.0))
    scenario.add(FlowRequest("cbr0", 6, 7, t0, kind="cbr",
                             rate_bps=2 * MBPS, duration_s=600.0))
    scenario.add(FlowRequest("hyb", 8, 9, t0, medium="hybrid",
                             duration_s=600.0))
    scenario.add(FlowRequest("wifi0", 13, 14, t0, medium="wifi",
                             duration_s=600.0))
    return scenario


def test_nine_flows_ten_minutes(testbed, t_work, once):
    def experiment():
        runner = ScenarioRunner(testbed, check_invariants=True)
        results = runner.run(_nine_flow_scenario(t_work))
        return runner, results

    runner, results = once(experiment)
    stats = runner.stats
    assert stats.quanta == 1200
    assert stats.cache.hit_rate > 0.8       # 5 s window, 0.5 s quantum
    assert stats.invariant_violations == 0
    assert stats.max_domain_airtime <= 1.0 + 1e-6
    assert results["cbr0"].mean_rate_bps <= 2 * MBPS * (1 + 1e-9)
    assert all(r.delivered_bytes > 0 for r in results.values())


def test_tracing_overhead_under_ceiling(testbed, t_work, once):
    """Full observability (tracer + profiler) on the nine-flow scenario
    costs < 5% wall time over the bare runner."""
    scenario = _nine_flow_scenario(t_work)
    quanta = int(OVERHEAD_HORIZON_S / 0.5)

    def run(observed: bool):
        tracer = Tracer(enabled=observed)
        profiler = Profiler(metrics=MetricsRegistry(), enabled=observed)
        runner = ScenarioRunner(testbed, check_invariants=True,
                                tracer=tracer, profiler=profiler)
        runner.run(scenario, horizon_s=OVERHEAD_HORIZON_S)
        return runner, tracer, profiler

    def experiment():
        run(False)  # warm any lazy channel state in the session testbed
        best = {"untraced_s": float("inf"), "traced_s": float("inf")}
        for _ in range(OVERHEAD_REPS):
            for key, observed in (("untraced_s", False),
                                  ("traced_s", True)):
                start = time.perf_counter()
                run(observed)
                best[key] = min(best[key],
                                time.perf_counter() - start)
        return best

    timings = once(experiment)
    overhead = timings["traced_s"] / timings["untraced_s"] - 1.0
    timings["overhead_frac"] = overhead

    runner, tracer, profiler = run(True)
    events = len(tracer.events)
    summary = profiler.summary()
    timings["trace_events"] = events
    timings["profile"] = summary

    out_path = os.environ.get("BENCH_OBS_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(timings, fh, indent=2, sort_keys=True)
            fh.write("\n")

    print(f"untraced {timings['untraced_s']:.3f}s traced "
          f"{timings['traced_s']:.3f}s overhead {overhead * 100:.2f}% "
          f"({events} events, {len(summary)} profiled stages)")
    assert events > quanta            # >= one event per quantum
    assert summary["runner.allocate"]["calls"] == quanta
    assert overhead < MAX_TRACING_OVERHEAD, (
        f"observability overhead {overhead * 100:.2f}% exceeds "
        f"{MAX_TRACING_OVERHEAD * 100:.0f}% ceiling")
