"""Scenario-runner scale + observability-overhead benchmarks.

Pytest surface over the shared bench plane: the nine-flow ten-minute
runner workload and the traced/untraced overhead pair live in
:mod:`repro.bench.domains.runner_scale` and
:mod:`repro.bench.domains.obs_overhead`. This module runs them through
the harness (reduced repeats for the local loop) and asserts the
correctness metrics and generous smoke floors; wall-time regressions
are gated baseline-relative by ``repro bench compare`` in CI.
"""

from __future__ import annotations

from repro.bench import check_smoke, run_benchmarks
from repro.bench.domains.obs_overhead import HORIZON_S as OBS_HORIZON_S
from repro.units import MBPS


def test_nine_flows_ten_minutes():
    doc = run_benchmarks(["runner.nine_flows"], repeats=2, warmup=1)
    result = doc.results["runner.nine_flows"]
    metrics = result.metrics

    assert metrics["quanta"] == 1200
    assert metrics["cache_hit_rate"] > 0.8   # 5 s window, 0.5 s quantum
    assert metrics["invariant_violations"] == 0
    assert metrics["max_domain_airtime"] <= 1.0 + 1e-6
    assert metrics["cbr_mean_rate_bps"] <= 2 * MBPS * (1 + 1e-9)
    assert metrics["min_delivered_bytes"] > 0
    print(f"nine flows, ten minutes: min {result.min_s:.3f}s over "
          f"{result.repeats} repeats")

    violations = check_smoke(doc)
    assert not violations, "\n".join(violations)


def test_tracing_overhead_under_smoke_ceiling():
    """Full observability (tracer + profiler) on the nine-flow scenario
    stays under the generous smoke ceiling; the historical <5% claim is
    held by the baseline-relative gate on each side's samples."""
    doc = run_benchmarks(["obs.runner_untraced", "obs.runner_traced"],
                         repeats=5, warmup=1)
    untraced = doc.results["obs.runner_untraced"]
    traced = doc.results["obs.runner_traced"]
    quanta = OBS_HORIZON_S / 0.5

    overhead = traced.min_s / untraced.min_s - 1.0
    print(f"untraced {untraced.min_s:.3f}s traced {traced.min_s:.3f}s "
          f"overhead {overhead * 100:.2f}% "
          f"({traced.metrics['trace_events']:g} events)")
    assert traced.metrics["trace_events"] > quanta
    assert traced.metrics["allocate_calls"] == quanta

    violations = check_smoke(doc)
    assert not violations, "\n".join(violations)
