"""The bench plane's own meta-benchmark.

Runs ``meta.noop`` — a near-empty body — through the shared harness, so
the measurement loop's per-repeat overhead (clock reads, profiler
stages, the sample histogram) is itself on the trajectory. If a future
harness change fattens the loop, this is the benchmark that regresses.
"""

from __future__ import annotations

from repro.bench import check_smoke, run_benchmarks


def test_harness_overhead_is_measurable():
    doc = run_benchmarks(["meta.noop"])
    result = doc.results["meta.noop"]
    assert result.repeats == 5
    assert result.warmup_discarded == 1
    assert all(s >= 0.0 for s in result.samples_s)
    assert result.metrics["spin"] == 1000
    # The harness must stay featherweight: an empty-ish body on any
    # modern machine is far under a millisecond per repeat.
    assert result.min_s < 1e-3
    assert check_smoke(doc) == []
