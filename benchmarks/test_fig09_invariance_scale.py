"""Fig. 9: invariance-scale variation of BLE_s from captured PLC frames.

Paper: SoF captures of saturated traffic on an average link (6-1) and a good
link (0-2) over an 80 ms window. BLE_s changes periodically with a 10 ms
period (half the 50 Hz mains cycle), because each frame advertises the tone
map of the slot its transmission starts in. The spread across slots is large
for noisy links and present even on good ones — which is why §7.1 insists
capacity estimates average over all 6 slots.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.variation import invariance_scale_stats
from repro.plc.sniffer import capture_saturated
from repro.units import HALF_MAINS_CYCLE, MBPS


def test_fig09_invariance_scale(testbed, t_work, once):
    # Captured during working hours: the mains-synchronous appliance noise
    # (lighting, lab gear) is what modulates the slots.
    def experiment():
        out = {}
        for label, (i, j) in {"average link": (0, 4),
                              "good link": (13, 14)}.items():
            link = testbed.plc_link(i, j)
            out[label] = capture_saturated(link, t_work, 0.5,
                                           src=str(i), dst=str(j))
        return out

    captures = once(experiment)
    rows = []
    stats = {}
    for label, sofs in captures.items():
        s = invariance_scale_stats(sofs)
        stats[label] = s
        rows.append([label, len(sofs)]
                    + [m / MBPS for m in s.slot_means_bps])
    print()
    print(format_table(
        ["link", "frames"] + [f"slot {k}" for k in range(6)],
        rows, title="Fig. 9 — per-slot BLE (Mbps) from SoF capture"))

    for label, s in stats.items():
        # All six slots observed; 10 ms periodicity by construction.
        assert (s.slot_means_bps > 0).all()
        assert s.periodicity_s == HALF_MAINS_CYCLE
    # The noisy link's slots spread much wider than the good link's.
    assert stats["average link"].slot_spread_ratio > 1.15
    assert (stats["average link"].slot_spread_ratio
            > stats["good link"].slot_spread_ratio)

    # Periodicity check straight from the frame stream: the advertised BLE
    # repeats when the capture time advances by one half mains cycle.
    sofs = captures["average link"]
    by_slot = {}
    for sof in sofs:
        by_slot.setdefault(sof.slot, []).append(sof.ble_bps)
    for slot, values in by_slot.items():
        assert np.std(values) < 0.2 * np.mean(values)
