"""Fig. 13: random-scale BLE of a *good* link over 2 consecutive weeks.

Paper: link 1-8, hourly means with error bars, weekdays vs weekends.
Shapes: a shallow daytime dip on weekdays, an almost flat weekend profile,
and a tiny standard deviation throughout — good links can be probed every
minute or hour (§6.3).
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.variation import hour_of_day_profile
from repro.testbed.experiments import long_run_series
from repro.units import MBPS, WEEK


def test_fig13_good_link_two_weeks(testbed, once):
    def experiment():
        return long_run_series(testbed, 13, 14, t_start=0.0,
                               duration=2 * WEEK, interval=300.0,
                               metric="ble")

    series = once(experiment)
    profile = hour_of_day_profile(series)
    rows = [[int(h), profile.weekday_mean[h] / MBPS,
             profile.weekday_std[h] / MBPS,
             profile.weekend_mean[h] / MBPS]
            for h in range(0, 24, 3)]
    print()
    print(format_table(
        ["hour", "weekday mean", "weekday std", "weekend mean"],
        rows, title="Fig. 13 — good link (13-14), 2 weeks of BLE (Mbps)"))

    weekday_day = np.nanmean(profile.weekday_mean[9:18])
    weekday_night = np.nanmean(
        np.concatenate([profile.weekday_mean[0:6],
                        profile.weekday_mean[22:24]]))
    weekend_day = np.nanmean(profile.weekend_mean[9:18])

    # Weekday working hours dip below weekday nights; weekends stay high.
    assert weekday_night > weekday_day
    assert weekend_day > weekday_day
    # The dip is shallow (a good link): a few percent, not a collapse.
    assert (weekday_night - weekday_day) / weekday_night < 0.25
    # Small variability: this is what licenses slow probing (§6.3). The
    # bad link of Fig. 14 is ~10x more variable over the same two weeks.
    cv = series.std / series.mean
    assert cv < 0.10
