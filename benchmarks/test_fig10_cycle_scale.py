"""Fig. 10: cycle-scale BLE traces for links of various qualities.

Paper protocol: 4-minute runs at night, average BLE polled by MM every
50 ms. Shapes:

* bad links (11-4, 6-5) update tone maps constantly with large BLE std;
* average links (18-15, 1-2) hold for seconds, moderate std;
* good links (15-18, 3-1) hold for many seconds with ≤ ~1 % wiggles;
* asymmetric pairs (15-18 vs 18-15) differ in *temporal* behaviour too;
* the AV500 estimator occasionally collapses on bursty errors (vendor
  quirk) — exercised in the estimator tests; here we compare HPAV traces.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.variation import cycle_scale_stats
from repro.testbed.experiments import poll_ble_series
from repro.units import MBPS

LINKS = [("bad", 11, 4), ("bad", 6, 5), ("average", 18, 15),
         ("average", 1, 2), ("good", 15, 18), ("good", 13, 14)]


def test_fig10_cycle_scale_traces(testbed, t_night, once):
    def experiment():
        out = {}
        for label, i, j in LINKS:
            series = poll_ble_series(testbed, i, j, t_night, 240.0)
            out[(label, i, j)] = cycle_scale_stats(series)
        return out

    stats = once(experiment)
    rows = [[f"{i}-{j}", label, s.mean_ble_bps / MBPS,
             s.std_ble_bps / MBPS, s.mean_alpha_s * 1000, s.n_updates]
            for (label, i, j), s in stats.items()]
    print()
    print(format_table(
        ["link", "class", "mean BLE", "std BLE", "alpha (ms)", "updates"],
        rows, title="Fig. 10 — cycle-scale BLE statistics (4 min, night)"))

    by_class = {}
    for (label, i, j), s in stats.items():
        by_class.setdefault(label, []).append(s)

    bad_cv = np.mean([s.coefficient_of_variation
                      for s in by_class["bad"]])
    good_cv = np.mean([s.coefficient_of_variation
                       for s in by_class["good"]])
    assert bad_cv > 4 * good_cv          # bad links far more variable
    assert good_cv < 0.02                # good links wiggle ≤ ~1-2 %

    bad_alpha = np.mean([s.mean_alpha_s for s in by_class["bad"]])
    good_alpha = np.mean([s.mean_alpha_s for s in by_class["good"]])
    assert bad_alpha < 1.0               # sub-second updates
    assert good_alpha > 2 * bad_alpha    # good links hold much longer

    # Temporal-variation asymmetry (15-18 vs 18-15).
    fwd = stats[("good", 15, 18)]
    rev = stats[("average", 18, 15)]
    assert fwd.std_ble_bps != rev.std_ble_bps
