"""Fig. 11: tone-map update inter-arrival α and std(BLE) vs link quality.

Paper protocol: every link, 4 min of MM polling at 50 ms (nights/weekends);
links sorted by average BLE. Shapes: good links update less often (α grows
with quality) and have smaller BLE std (negative quality-variability
correlation). We thin to 45 s per link to keep the sweep tractable — the
estimators are unchanged.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.stats import pearson
from repro.core.variation import cycle_scale_stats
from repro.testbed.experiments import poll_ble_series
from repro.units import MBPS


def test_fig11_alpha_and_std_vs_quality(testbed, t_night, once):
    def experiment():
        stats = []
        for i, j in testbed.same_board_pairs():
            link = testbed.plc_link(i, j)
            if not link.is_connected(t_night):
                continue
            series = poll_ble_series(testbed, i, j, t_night, 45.0)
            stats.append(((i, j), cycle_scale_stats(series)))
        return stats

    stats = once(experiment)
    means = np.array([s.mean_ble_bps for _, s in stats]) / MBPS
    stds = np.array([s.std_ble_bps for _, s in stats]) / MBPS
    alphas = np.array([s.mean_alpha_s for _, s in stats])

    order = np.argsort(means)
    bins = np.array_split(order, 6)
    rows = []
    for b in bins:
        rows.append([f"{means[b].min():.0f}-{means[b].max():.0f}",
                     len(b), float(np.mean(alphas[b]) * 1000),
                     float(np.mean(stds[b]))])
    print()
    print(format_table(
        ["BLE bin (Mbps)", "links", "mean alpha (ms)", "mean std (Mbps)"],
        rows, title="Fig. 11 — update inter-arrival and BLE std by quality"))

    # Paper shapes: α spans ~1e2..1e4 ms; std falls with quality.
    assert pearson(means, stds) < -0.4
    assert pearson(means, np.log10(alphas)) > 0.4
    assert alphas.min() < 0.5
    assert alphas.max() > 5.0
    # Good links' std below ~2 Mbps; bad links' std reaches several Mbps.
    good = means >= 100.0
    bad = means < 60.0
    assert good.any() and bad.any()
    assert np.median(stds[good]) < 1.5
    assert np.median(stds[bad]) > np.median(stds[good])
