"""Ablation: tone-map maintenance policy (§2.1's 30 s expiry + error
threshold).

Sweeps the tone-map expiry and the drift threshold and reports the update
inter-arrival α and the realised BLE accuracy, quantifying the paper's
observation that good links could be maintained far more lazily (§6.2) —
and what the 1901 defaults actually buy on bad links.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.plc.tonemap import ToneMapProcess
from repro.units import MBPS


def _run(testbed, i, j, t0, expiry, drift, duration=60.0):
    link = testbed.plc_link(i, j)
    channel = link.channel
    # Patch the spec-driven expiry via a subclassed process config: the
    # process reads expiry from the spec, so sweep via drift threshold and
    # measure effective alpha; expiry is emulated by capping age below.
    process = ToneMapProcess(channel, start_time=t0,
                             drift_threshold=drift)
    # Monkey-level expiry override: advance in expiry-sized chunks and
    # force regeneration at each boundary when the standard expiry (30 s)
    # would not have fired yet.
    process.spec = link.spec
    end = t0 + duration
    t = t0
    while t < end:
        t = min(t + expiry, end)
        process.advance(t)
        if process.tone_map.age(t) >= expiry:
            process._regenerate(t, "expiry-ablation")
    alphas = process.ble_update_interarrivals()
    # Accuracy: realised BLE of held tone maps vs fresh tone maps.
    errors = []
    for check in np.arange(t0, end, 5.0):
        held = process.tone_map
        fresh = link.avg_ble_bps(check)
        if fresh > 0:
            errors.append(abs(held.avg_ble_bps() - fresh) / fresh)
    return (float(np.mean(alphas)) if len(alphas) else duration,
            float(np.mean(errors)))


def test_ablation_tonemap_maintenance(testbed, t_night, once):
    def experiment():
        out = {}
        for drift in (0.005, 0.01, 0.05):
            for expiry in (5.0, 30.0):
                out[("good 13-14", drift, expiry)] = _run(
                    testbed, 13, 14, t_night, expiry, drift)
                out[("bad 11-4", drift, expiry)] = _run(
                    testbed, 11, 4, t_night, expiry, drift)
        return out

    results = once(experiment)
    rows = [[link, drift, expiry, alpha, err]
            for (link, drift, expiry), (alpha, err)
            in sorted(results.items())]
    print()
    print(format_table(
        ["link", "drift thr", "expiry (s)", "mean alpha (s)",
         "mean rel. BLE error"],
        rows, title="Ablation — tone-map maintenance policy"))

    # Bad links: alpha is error-driven, so expiry barely matters.
    bad_fast = results[("bad 11-4", 0.01, 5.0)]
    bad_slow = results[("bad 11-4", 0.01, 30.0)]
    assert abs(bad_fast[0] - bad_slow[0]) < 2.0
    # Good links: a looser drift threshold cuts updates without hurting
    # accuracy much — the paper's lazy-probing licence.
    good_tight = results[("good 13-14", 0.005, 30.0)]
    good_loose = results[("good 13-14", 0.05, 30.0)]
    assert good_loose[0] >= good_tight[0]
    assert good_loose[1] < 0.05
    # Accuracy degrades monotonically-ish with the drift threshold on the
    # bad link (it really needs the updates).
    assert (results[("bad 11-4", 0.05, 30.0)][1]
            >= results[("bad 11-4", 0.005, 30.0)][1] - 0.02)
