"""Snapshot-plane benchmarks: checkpoint codec cost + slice pipelining.

Pytest surface over the shared bench plane: the paused-runner roundtrip
and the Fig. 13 straight/sliced campaign pair live in
:mod:`repro.bench.domains.snapshot`. This module runs them through the
harness and asserts the discrete facts (tasks complete, blobs encode)
plus the document-level smoke bounds; byte-identity of sliced artifacts
is the verify suite's ``diff_slice_equivalence`` oracle, and wall-time
regressions are gated baseline-relative in CI.
"""

from __future__ import annotations

from repro.bench import check_smoke, run_benchmarks
from repro.bench.domains.snapshot import N_TASKS, SLICES


def test_snapshot_roundtrip_codec():
    doc = run_benchmarks(["snapshot.roundtrip"], repeats=3, warmup=1)
    result = doc.results["snapshot.roundtrip"]
    assert result.metrics["blob_bytes"] > 0
    print(f"checkpoint roundtrip {result.min_s * 1e3:.2f} ms, "
          f"{result.metrics['blob_bytes']:.0f} bytes")


def test_fig13_sliced_vs_straight():
    doc = run_benchmarks(["snapshot.fig13_straight",
                          "snapshot.fig13_sliced"], repeats=1, warmup=0)
    straight = doc.results["snapshot.fig13_straight"]
    sliced = doc.results["snapshot.fig13_sliced"]
    assert straight.metrics["n_tasks"] == N_TASKS
    assert sliced.metrics["slices_per_task"] == SLICES
    print(f"straight {straight.min_s:.2f}s sliced {sliced.min_s:.2f}s "
          f"ratio {sliced.min_s / straight.min_s:.2f}")

    violations = check_smoke(doc)
    assert not violations, "\n".join(violations)
