"""Ablation: the IEEE 1901 deferral counter (§2.2, refs [19], [21]).

1901 stations grow their contention window after *sensing the medium busy*
(deferral counter), not only after collisions — unlike 802.11. The paper's
prior work shows this trades collision rate for short-term unfairness and
jitter. The ablation runs the same two-flow contention with the DC enabled
and disabled and compares collision rates and inter-transmission jitter.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.plc.csma import (
    CsmaConfig,
    CsmaSimulator,
    FlowSpec,
    jain_fairness,
    short_term_jitter,
)
from repro.sim.random import RandomStreams


def test_ablation_deferral_counter(testbed, t_work, once):
    def experiment():
        out = {}
        for use_dc in (True, False):
            flows = [
                FlowSpec("f1", testbed.networks["B1"].link("0", "1")),
                FlowSpec("f2", testbed.networks["B1"].link("2", "3")),
            ]
            sim = CsmaSimulator(
                flows, RandomStreams(seed=77),
                config=CsmaConfig(use_deferral_counter=use_dc),
                name=f"ablation-dc-{use_dc}")
            stats = sim.run(t_work, 15.0)
            out[use_dc] = {
                "collision_rate": (stats["f1"].collisions
                                   / max(stats["f1"].frames_sent, 1)),
                "jitter_ms": short_term_jitter(
                    stats["f1"].transmit_times) * 1000,
                "fairness": jain_fairness(
                    [stats["f1"].pbs_delivered, stats["f2"].pbs_delivered]),
            }
        return out

    results = once(experiment)
    rows = [[("1901 (DC on)" if dc else "802.11-like (DC off)"),
             r["collision_rate"], r["jitter_ms"], r["fairness"]]
            for dc, r in results.items()]
    print()
    print(format_table(
        ["MAC", "collision rate", "short-term jitter (ms)",
         "Jain fairness"],
        rows, title="Ablation — 1901 deferral counter"))

    with_dc, without = results[True], results[False]
    # The DC's design goal: fewer collisions...
    assert with_dc["collision_rate"] <= without["collision_rate"]
    # ...at the cost of short-term unfairness / jitter ([19], [21]).
    assert with_dc["jitter_ms"] > without["jitter_ms"]
    # Long-term fairness survives in both.
    assert with_dc["fairness"] > 0.6
