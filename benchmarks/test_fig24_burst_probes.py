"""Fig. 24: bursts of probes remove the background-traffic sensitivity.

Paper: the same 150 kbps probing budget, but sent as 20-packet bursts that
the MAC aggregates into one maximum-length frame. Long frames let the
channel-estimation algorithm attribute collision losses correctly, so BLE
stays flat under saturated background traffic (§8.2).
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.plc.csma import CsmaSimulator, FlowSpec
from repro.sim.random import RandomStreams
from repro.units import MBPS


def _run(testbed, burst_packets, seed):
    net = testbed.networks["B1"]
    est = net.estimator("1", "0")
    est.reset()
    est.observe_clean_pbs(0.0, 2_000_000)
    t0 = 2 * 86400 + 14 * 3600
    before = est.estimated_capacity_bps(t0) / MBPS
    flows = [
        FlowSpec("probe", net.link("1", "0"), rate_bps=150e3,
                 burst_packets=burst_packets, estimator=est),
        FlowSpec("bg", net.link("6", "11")),
    ]
    sim = CsmaSimulator(flows, RandomStreams(seed),
                        name=f"fig24-{burst_packets}")
    sim.run(t0, 40.0)
    after = est.estimated_capacity_bps(t0 + 40.0) / MBPS
    return before, after


def test_fig24_bursts_fix_sensitivity(testbed, once):
    def experiment():
        return {
            "150 kbps, single packets": _run(testbed, 1, 41),
            "150 kbps, 20-packet bursts": _run(testbed, 20, 41),
        }

    results = once(experiment)
    rows = [[name, before, after, after / before]
            for name, (before, after) in results.items()]
    print()
    print(format_table(
        ["probing", "BLE before", "BLE with bg", "ratio"],
        rows, title="Fig. 24 — burst probing under saturated background"))

    plain_before, plain_after = results["150 kbps, single packets"]
    burst_before, burst_after = results["150 kbps, 20-packet bursts"]
    # Plain probes: sensitive. Burst probes: flat.
    assert plain_after < 0.8 * plain_before
    assert burst_after > 0.95 * burst_before
