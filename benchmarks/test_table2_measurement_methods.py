"""Table 2: every metric/measurement-method pair, exercised end to end.

The paper's Table 2 lists the observables and how each is measured. This
bench walks each row through the corresponding code path on one link and
prints the values — the API smoke of the measurement layer.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.plc.mm import MmClient
from repro.plc.sniffer import capture_saturated
from repro.traffic.iperf import run_udp_test
from repro.units import MBPS


def test_table2_measurement_methods(testbed, t_work, once):
    def experiment():
        i, j = 0, 1
        link = testbed.plc_link(i, j)
        mm = MmClient(testbed.networks["B1"])
        rows = []
        # Arrival timestamp + instantaneous BLE: SoF delimiter.
        sofs = capture_saturated(link, t_work, 0.1, src="0", dst="1")
        rows.append(["arrival timestamp t", "SoF delimiter",
                     f"{sofs[0].timestamp:.6f} s"])
        rows.append(["bit loading estimate BLE_s", "SoF delimiter",
                     f"{sofs[0].ble_bps / MBPS:.1f} Mbps (slot "
                     f"{sofs[0].slot})"])
        # PBerr: MM (ampstat).
        rows.append(["PB error probability PBerr", "MM (ampstat)",
                     f"{mm.ampstat('0', '1', t_work):.4f}"])
        # Average BLE: MM (int6krate).
        rows.append(["average BLE", "MM (int6krate)",
                     f"{mm.int6krate('0', '1', t_work + 1.0):.1f} Mbps"])
        # Throughput: iperf.
        series = run_udp_test(link, t_work, 5.0, 0.1)
        rows.append(["throughput T", "iperf",
                     f"{series.mean / MBPS:.1f} Mbps"])
        # WiFi MCS: frame control.
        mcs = testbed.wifi_link(0, 1).mcs_index(t_work)
        rows.append(["MCS index (WiFi)", "WiFi frame control", str(mcs)])
        return rows, sofs, series, mcs

    rows, sofs, series, mcs = once(experiment)
    print()
    print(format_table(["metric", "measured with", "value"], rows,
                       title="Table 2 — metrics and measurement methods"))

    assert len(sofs) > 3
    assert series.mean > 1 * MBPS
    assert -1 <= mcs <= 15
