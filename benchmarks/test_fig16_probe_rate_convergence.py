"""Fig. 16: capacity-estimation convergence vs probe rate.

Paper: devices reset before each run; 1300 B probes at 1/10/50/200 packets
per second; the estimated capacity converges to the same value for every
rate, but the convergence *time* shrinks with the probe rate (the estimator
needs error samples from many PBs).
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.capacity import ProbingCapacitySession
from repro.units import MBPS

RATES = (1, 10, 50, 200)


def test_fig16_convergence_vs_rate(testbed, t_work, once):
    def experiment():
        out = {}
        for (i, j) in [(0, 1), (2, 7)]:   # a good and an average link
            net = testbed.networks["B1"]
            for rate in RATES:
                est = net.estimator(str(i), str(j))
                est.reset()
                session = ProbingCapacitySession(
                    est, payload_bytes=1300, packets_per_second=rate)
                trace = session.run(t_work, 8000.0, sample_interval=400.0)
                out[(f"{i}-{j}", rate)] = (
                    [e.capacity_bps / MBPS for e in trace],
                    est.converged_capacity_bps(t_work + 8000.0) / MBPS)
        return out

    results = once(experiment)
    rows = []
    for (link, rate), (trace, target) in sorted(results.items()):
        rows.append([link, rate, trace[0], trace[len(trace) // 2],
                     trace[-1], target])
    print()
    print(format_table(
        ["link", "pkt/s", "t=0", "t=4000s", "t=8000s", "converged"],
        rows, title="Fig. 16 — estimated capacity (Mbps) vs probing rate"))

    for link in ("0-1", "2-7"):
        finals = {rate: results[(link, rate)][0][-1] for rate in RATES}
        target = results[(link, 200)][1]
        # Faster probing → closer to the converged value at t=8000 s.
        assert finals[200] >= finals[50] >= finals[10] > finals[1]
        assert finals[200] > 0.95 * target
        assert finals[1] < 0.93 * target   # 1 pkt/s visibly unconverged
        # All rates start from the same depressed post-reset estimate.
        starts = {rate: results[(link, rate)][0][0] for rate in RATES}
        assert max(starts.values()) - min(starts.values()) < 0.1 * target
