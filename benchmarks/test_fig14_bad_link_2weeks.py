"""Fig. 14: random-scale BLE of a *bad* link over 2 consecutive weeks.

Paper: link 2-11 in Nov. 2014. Shapes: a deep working-hours trough on
weekdays (the y-axis spans 25-50 Mbps — a ~40 % swing), calm weekends, and
σ growing when µ drops (more appliances on → more noise, §6.3).
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.variation import hour_of_day_profile
from repro.testbed.experiments import long_run_series
from repro.units import MBPS, WEEK


def test_fig14_bad_link_two_weeks(testbed, once):
    def experiment():
        return long_run_series(testbed, 2, 11, t_start=0.0,
                               duration=2 * WEEK, interval=300.0,
                               metric="ble")

    series = once(experiment)
    profile = hour_of_day_profile(series)
    rows = [[int(h), profile.weekday_mean[h] / MBPS,
             profile.weekday_std[h] / MBPS,
             profile.weekend_mean[h] / MBPS]
            for h in range(0, 24, 3)]
    print()
    print(format_table(
        ["hour", "weekday mean", "weekday std", "weekend mean"],
        rows, title="Fig. 14 — bad link (2-11), 2 weeks of BLE (Mbps)"))

    weekday_day = np.nanmean(profile.weekday_mean[9:18])
    weekday_night = np.nanmean(
        np.concatenate([profile.weekday_mean[0:6],
                        profile.weekday_mean[22:24]]))
    weekend_day = np.nanmean(profile.weekend_mean[9:18])

    # Deep weekday trough; weekends far milder.
    assert weekday_night > weekday_day
    assert (weekday_night - weekday_day) / weekday_night > 0.10
    assert weekend_day > weekday_day
    # σ grows when µ drops: busy-hours std exceeds night std.
    std_day = np.nanmean(profile.weekday_std[9:18])
    std_night = np.nanmean(
        np.concatenate([profile.weekday_std[0:6],
                        profile.weekday_std[22:24]]))
    assert std_day > std_night
    # Much more variable than the good link of Fig. 13 overall.
    assert series.std / series.mean > 0.25
