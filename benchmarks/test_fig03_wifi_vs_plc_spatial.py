"""Fig. 3 + §4.1 headline numbers: WiFi vs PLC spatial survey.

Paper protocol: for every station pair, saturated throughput of both media
measured back-to-back for 5 min at 100 ms. Paper shapes to reproduce:

* PLC connectivity ⊇ WiFi connectivity (100 % / 81 % in the paper);
* ~52 % of pairs faster on PLC; max gains ~18× (PLC) / ~12× (WiFi);
* σ_W up to ~19 Mbps, σ_P mostly < 4 Mbps;
* beyond 35 m air distance: no WiFi, PLC still delivers.

We thin the protocol to 1 min at 0.5 s per medium (same estimator, ~1/60 of
the samples) to keep the bench minutes-scale.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.testbed.experiments import survey_pairs
from repro.units import MINUTE


def test_fig03_spatial_survey(testbed, t_work, once):
    def experiment():
        return survey_pairs(testbed, t_work, duration=MINUTE,
                            report_interval=0.5)

    rows = once(experiment)
    connected = [r for r in rows if r.plc_connected or r.wifi_connected]
    plc_conn = [r for r in rows if r.plc_connected]
    wifi_conn = [r for r in rows if r.wifi_connected]
    both = [r for r in rows if r.plc_connected and r.wifi_connected]

    wifi_also_plc = len(both) / len(wifi_conn)
    plc_also_wifi = len(both) / len(plc_conn)
    plc_wins = np.mean([r.plc_mean_mbps > r.wifi_mean_mbps
                        for r in connected])
    gains_plc = max(r.plc_mean_mbps / max(r.wifi_mean_mbps, 1.0)
                    for r in both)
    gains_wifi = max(r.wifi_mean_mbps / max(r.plc_mean_mbps, 1.0)
                     for r in both)
    sigma_w = max(r.wifi_std_mbps for r in wifi_conn)
    sigma_p_90 = np.percentile([r.plc_std_mbps for r in plc_conn], 90)
    far = [r for r in rows if r.air_distance_m > 35.0]
    far_plc_best = max(r.plc_mean_mbps for r in far)

    print()
    print(format_table(
        ["statistic", "paper", "measured"],
        [
            ["WiFi-connected pairs also on PLC (%)", 100, 100 * wifi_also_plc],
            ["PLC-connected pairs also on WiFi (%)", 81, 100 * plc_also_wifi],
            ["pairs faster on PLC (%)", 52, 100 * plc_wins],
            ["max PLC/WiFi throughput gain (x)", 18, gains_plc],
            ["max WiFi/PLC throughput gain (x)", 12, gains_wifi],
            ["max sigma_WiFi (Mbps)", 19.2, sigma_w],
            ["90th-pct sigma_PLC (Mbps)", "<4", sigma_p_90],
            ["best PLC beyond 35 m air (Mbps)", 41, far_plc_best],
        ],
        title="Fig. 3 / §4.1 — WiFi vs PLC spatial survey"))

    # Shape assertions (who wins, by what order).
    assert wifi_also_plc > 0.9
    assert 0.6 < plc_also_wifi <= 1.0
    assert 0.35 < plc_wins < 0.85
    assert gains_plc > 5.0 and gains_wifi > 5.0
    assert sigma_w > 8.0
    assert sigma_p_90 < 6.0
    assert all(r.wifi_mean_mbps < 3.0 for r in far)
    assert far_plc_best > 15.0
