"""Ablation: invariance-scale averaging in capacity estimation (§6.1, §7.1).

The paper insists BLE must be averaged over the 6 tone-map slots of the
mains cycle. The ablation estimates capacity from SoF captures whose frame
cadence is *biased* towards particular slots (as any short capture under
periodic traffic can be) with and without slot averaging, and measures the
estimation error against the true slot-mean capacity.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.capacity import estimate_capacity_from_sofs
from repro.plc.sniffer import capture_saturated
from repro.units import MBPS


def test_ablation_slot_averaging(testbed, t_work, once):
    def experiment():
        rows = []
        for (i, j) in [(0, 4), (2, 7), (6, 5)]:
            link = testbed.plc_link(i, j)
            sofs = capture_saturated(link, t_work, 1.0)
            truth = float(np.mean(link.ble_per_slot_bps(t_work)))
            # Bias the capture towards the two noisiest slots (e.g. a
            # capture window phase-locked to the mains).
            per_slot = link.ble_per_slot_bps(t_work)
            bad_slots = set(np.argsort(per_slot)[:2])
            biased = [s for s in sofs if s.slot in bad_slots]
            biased += [s for s in sofs if s.slot not in bad_slots][:6]
            fair = estimate_capacity_from_sofs(biased, slot_average=True)
            naive = estimate_capacity_from_sofs(biased, slot_average=False)
            rows.append([f"{i}-{j}", truth / MBPS,
                         fair.capacity_bps / MBPS,
                         naive.capacity_bps / MBPS,
                         abs(fair.capacity_bps - truth) / truth,
                         abs(naive.capacity_bps - truth) / truth])
        return rows

    rows = once(experiment)
    print()
    print(format_table(
        ["link", "true (Mbps)", "slot-avg", "naive", "slot-avg rel.err",
         "naive rel.err"],
        rows, title="Ablation — invariance-scale averaging"))

    for row in rows:
        _, truth, fair, naive, fair_err, naive_err = row
        assert fair_err < naive_err      # averaging wins on every link
        assert fair_err < 0.10
        assert naive_err > 0.05          # the bias is material
