"""Fig. 23: sensitivity of link metrics to background traffic.

Paper: a probe flow at 150 kbps; after 200 s a second link starts saturated
"background" traffic. On *some* link pairs the probe receiver's BLE drops
sharply and PBerr explodes — the capture effect: during collisions the
stronger receiver decodes a few PBs, sees the rest as errors, and the
channel-estimation algorithm (unable to tell collisions from channel noise)
lowers the rate. Other pairs are insensitive.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.plc.csma import CsmaSimulator, FlowSpec
from repro.sim.random import RandomStreams
from repro.units import MBPS

PHASE = 30.0  # probe alone, then probe + saturated background


def _run_pair(testbed, probe, bg, seed):
    net = testbed.networks["B1"]
    est = net.estimator(*[str(x) for x in probe])
    est.reset()
    est.observe_clean_pbs(0.0, 2_000_000)   # converged before the test
    t0 = 2 * 86400 + 14 * 3600
    probe_link = net.link(str(probe[0]), str(probe[1]))
    bg_link = net.link(str(bg[0]), str(bg[1]))
    # Phase 1: probe flow alone.
    sim = CsmaSimulator(
        [FlowSpec("probe", probe_link, rate_bps=150e3, estimator=est)],
        RandomStreams(seed), name=f"alone-{probe}-{bg}")
    sim.run(t0, PHASE)
    before = est.estimated_capacity_bps(t0 + PHASE) / MBPS
    # Phase 2: background saturated flow joins.
    sim = CsmaSimulator(
        [FlowSpec("probe", probe_link, rate_bps=150e3, estimator=est),
         FlowSpec("bg", bg_link)],
        RandomStreams(seed + 1), name=f"bg-{probe}-{bg}")
    stats = sim.run(t0 + PHASE, PHASE)
    after = est.estimated_capacity_bps(t0 + 2 * PHASE) / MBPS
    return before, after, stats["probe"].collisions


def test_fig23_background_sensitivity(testbed, once):
    def experiment():
        return {
            # Strong probe link + saturated background: capture effect.
            "sensitive (1-0 vs 6-11)": _run_pair(testbed, (1, 0), (6, 11),
                                                 31),
            "sensitive (0-1 vs 9-11)": _run_pair(testbed, (0, 1), (9, 11),
                                                 33),
        }

    results = once(experiment)
    rows = [[name, before, after, coll]
            for name, (before, after, coll) in results.items()]
    print()
    print(format_table(
        ["pair", "BLE before (Mbps)", "BLE with bg", "collisions"],
        rows, title="Fig. 23 — BLE sensitivity to saturated background"))

    for name, (before, after, collisions) in results.items():
        assert collisions > 0, name
        # The capture effect drags the estimate down markedly.
        assert after < 0.8 * before, name


def test_fig23_low_rate_background_is_harmless(testbed, once):
    """§8.2: BLE is insensitive to *low-rate* background traffic."""
    def experiment():
        net = testbed.networks["B1"]
        est = net.estimator("1", "0")
        est.reset()
        est.observe_clean_pbs(0.0, 2_000_000)
        t0 = 2 * 86400 + 14 * 3600
        before = est.estimated_capacity_bps(t0) / MBPS
        sim = CsmaSimulator(
            [FlowSpec("probe", net.link("1", "0"), rate_bps=150e3,
                      estimator=est),
             FlowSpec("bg", net.link("6", "11"), rate_bps=150e3)],
            RandomStreams(35), name="lowrate")
        sim.run(t0, 60.0)
        after = est.estimated_capacity_bps(t0 + 60.0) / MBPS
        return before, after

    before, after = once(experiment)
    print(f"\nlow-rate background: BLE {before:.0f} -> {after:.0f} Mbps")
    assert after > 0.9 * before
