"""Fig. 21: broadcast-probe loss rate vs link quality — a dead end.

Paper: each station broadcasts 1500 B probes every 100 ms for 500 s (day and
night); receivers count losses. Shapes: loss rates sit around 1e-4 across a
wide quality range (ROBO modulation + proxy ACK), only the very worst links
stand out, and day/night are barely distinguishable — so broadcast ETX
carries (almost) no link-quality information (§8.1).
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.stats import pearson
from repro.core.etx import run_broadcast_probes
from repro.units import MBPS


def test_fig21_broadcast_loss(testbed, t_work, t_night, once):
    def experiment():
        rng = np.random.default_rng(11)
        rows = []
        for i, j in testbed.same_board_pairs():
            link = testbed.plc_link(i, j)
            thr = link.throughput_bps(t_night, measured=False) / MBPS
            day = run_broadcast_probes(link, t_work, 500.0, 0.1, rng)
            night = run_broadcast_probes(link, t_night, 500.0, 0.1, rng)
            rows.append((f"{i}-{j}", thr, link.pb_err(t_night),
                         day.loss_rate, night.loss_rate))
        return rows

    rows = once(experiment)
    thr = np.array([r[1] for r in rows])
    day_loss = np.array([r[3] for r in rows])
    night_loss = np.array([r[4] for r in rows])

    bins = [(0, 10), (10, 30), (30, 60), (60, 100)]
    table = []
    for lo, hi in bins:
        m = (thr >= lo) & (thr < hi)
        if m.any():
            table.append([f"{lo}-{hi} Mbps", int(m.sum()),
                          float(np.median(night_loss[m])),
                          float(np.median(day_loss[m]))])
    print()
    print(format_table(
        ["link quality (thr)", "links", "median loss night",
         "median loss day"],
        table, title="Fig. 21 — broadcast loss rate vs link quality"))

    alive = thr > 1.0
    # A wide range of qualities all sits at ~1e-4 loss.
    mid = alive & (thr > 10.0)
    assert np.median(night_loss[mid]) < 1e-3
    # Quality explains almost nothing about broadcast loss on alive links:
    corr = abs(pearson(thr[mid], night_loss[mid]))
    assert corr < 0.45
    # Only the very worst links show losses above 1e-1 (classifiable).
    worst = thr < 2.0
    if worst.any():
        assert night_loss[worst].max() > night_loss[mid].max()
    # Day/night barely distinguishable in the mid range.
    assert abs(np.median(day_loss[mid]) - np.median(night_loss[mid])) < 1e-3
