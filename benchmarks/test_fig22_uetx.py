"""Fig. 22: unicast expected transmission count (U-ETX) vs BLE and PBerr.

Paper: 150 kbps unicast flows (1500 B every ~75 ms, 5 min per link), SoF
capture, frames within 10 ms of the previous one counted as retransmissions.
Run during working hours, where the PBerr range is wide (at night the whole
simulated floor is quiet and every link sits at PBerr ≈ 0).
Shapes: U-ETX falls with BLE; U-ETX and averaged PBerr are almost linearly
related; the transmission-count std grows with U-ETX (quality ↔ variability
again).
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.stats import linear_fit, pearson
from repro.core.etx import measure_u_etx
from repro.units import MBPS


def test_fig22_u_etx(testbed, t_work, once):
    def experiment():
        rng = np.random.default_rng(12)
        rows = []
        for i, j in testbed.same_board_pairs():
            if i > j:
                continue  # one direction per pair keeps the sweep brisk
            link = testbed.plc_link(i, j)
            if not link.is_connected(t_work):
                continue
            ble = link.avg_ble_bps(t_work) / MBPS
            result = measure_u_etx(link, t_work, 90.0, rng)
            rows.append((f"{i}-{j}", ble, result.mean_pb_err,
                         result.u_etx, result.std,
                         result.predicted_u_etx))
        return rows

    rows = once(experiment)
    ble = np.array([r[1] for r in rows])
    pb_err = np.array([r[2] for r in rows])
    u_etx = np.array([r[3] for r in rows])
    stds = np.array([r[4] for r in rows])
    predicted = np.array([r[5] for r in rows])

    order = np.argsort(ble)
    table = []
    for chunk in np.array_split(order, 5):
        table.append([f"{ble[chunk].min():.0f}-{ble[chunk].max():.0f}",
                      len(chunk), float(u_etx[chunk].mean()),
                      float(pb_err[chunk].mean()),
                      float(stds[chunk].mean())])
    print()
    print(format_table(
        ["BLE bin (Mbps)", "links", "U-ETX", "PBerr", "std(tx count)"],
        table, title="Fig. 22 — U-ETX vs link quality"))

    # U-ETX decreases with BLE; high-BLE links essentially never retransmit.
    assert pearson(ble, u_etx) < -0.4
    good = ble > 100.0
    assert good.any() and u_etx[good].max() < 1.3
    # U-ETX is highly correlated with PBerr; the paper fits a curve, and
    # the underlying mechanism is the SACK retransmission law, so fitting
    # U-ETX against the analytic E[tx](PBerr) linearises it.
    assert pearson(pb_err, u_etx) > 0.6
    # The §8.1 predictor (SACK law applied to the PBerr *samples*, not to
    # the mean — the law is convex) explains the measurements tightly over
    # the paper's Fig. 22 range (PBerr ≤ 0.4; beyond that retransmission
    # trains overrun the probe interval and the 10 ms heuristic saturates).
    in_range = pb_err <= 0.4
    assert in_range.sum() >= 10
    fit = linear_fit(predicted[in_range], u_etx[in_range])
    assert fit.r_squared > 0.75
    assert 0.6 < fit.slope < 1.6       # near-identity against the law
    # Variability grows with U-ETX.
    assert pearson(u_etx, stds) > 0.6
    print(f"corr(BLE, U-ETX) = {pearson(ble, u_etx):.2f}; "
          f"U-ETX vs analytic law: slope {fit.slope:.2f}, "
          f"R² {fit.r_squared:.2f}")
