"""Fig. 18: probe-size pathology — one-PB probes pin the estimate at R_1sym.

Paper: 1 probe/s on link 11-6 with payloads 200 B, 520 B, 521 B, 1300 B.
Probes that fit in a single physical block (the paper's "520 B" counts the
8 B PB header, i.e. ≤ 512 B of payload) give the rate-adaptation loop no
gradient beyond one PB per OFDM symbol, so the estimate converges to
R_1sym = 520·8/Tsym ≈ 89.4 Mbps and stays there; 521 B (2 PBs) escapes.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.capacity import ProbingCapacitySession
from repro.units import MBPS

#: Paper label -> Ethernet payload we send (PB-header accounting).
SIZES = {"200B": 200, "520B": 512, "521B": 513, "1300B": 1300}


def test_fig18_probe_size_pathology(testbed, t_work, once):
    def experiment():
        out = {}
        net = testbed.networks["B2"]
        src, dst = "13", "14"   # a fast link: capacity well above R_1sym
        for label, payload in SIZES.items():
            est = net.estimator(src, dst)
            est.reset()
            session = ProbingCapacitySession(est, payload_bytes=payload,
                                             packets_per_second=1)
            trace = session.run(t_work, 60000.0, sample_interval=5000.0)
            out[label] = [e.capacity_bps / MBPS for e in trace]
        r1sym = net.link(src, dst).spec.one_symbol_rate_bps / MBPS
        converged = net.estimator(src, dst).converged_capacity_bps(
            t_work) / MBPS
        return out, r1sym, converged

    traces, r1sym, converged = once(experiment)
    rows = [[label, values[0], values[-1]]
            for label, values in traces.items()]
    print()
    print(format_table(
        ["probe size", "first estimate", "final estimate"],
        rows, title=f"Fig. 18 — estimate (Mbps) vs probe size "
                    f"(R_1sym = {r1sym:.1f}, link capacity ≈ "
                    f"{converged:.0f})"))

    # One-PB probes pin at R_1sym ≈ 89.4 Mbps.
    for label in ("200B", "520B"):
        final = traces[label][-1]
        assert final == np.clip(final, 0.96 * r1sym, 1.04 * r1sym), label
        # ... and once pinned, the estimate stays flat.
        tail = traces[label][-4:]
        assert max(tail) - min(tail) < 0.02 * r1sym
    # Multi-PB probes escape the pin and keep converging upward.
    for label in ("521B", "1300B"):
        assert traces[label][-1] > 1.1 * r1sym, label
