"""Fig. 17: pausing the probing does not lose channel-estimation state.

Paper: probe at 20 pkt/s, pause for ~7 minutes at t = 2300 s; on resume the
estimated capacity continues from where it left — the devices keep their
statistics, so the convergence penalty applies only after an explicit reset.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.capacity import ProbingCapacitySession
from repro.units import MBPS

PAUSE_START = 2300.0
PAUSE_LEN = 420.0


def test_fig17_pause_resume(testbed, t_work, once):
    def experiment():
        out = {}
        net = testbed.networks["B1"]
        for (i, j) in [(1, 0), (0, 3), (2, 7), (6, 7)]:
            est = net.estimator(str(i), str(j))
            est.reset()
            session = ProbingCapacitySession(est, payload_bytes=1300,
                                             packets_per_second=20)
            trace = session.run(
                t_work, 5000.0, sample_interval=100.0,
                pauses=[(t_work + PAUSE_START,
                         t_work + PAUSE_START + PAUSE_LEN)])
            out[f"{i}-{j}"] = {round(e.time - t_work): e.capacity_bps / MBPS
                               for e in trace}
        return out

    traces = once(experiment)
    rows = []
    for link, values in traces.items():
        rows.append([link, values[2300], values[2700], values[2800],
                     values[4900]])
    print()
    print(format_table(
        ["link", "before pause", "during pause", "after resume", "end"],
        rows,
        title="Fig. 17 — estimated capacity (Mbps) around a 7-min pause"))

    for link, values in traces.items():
        before = values[2300]
        after = values[2800]
        # No regression across the pause (state persisted).
        assert after >= before * 0.98, link
        # And the estimate keeps improving afterwards.
        assert values[4900] >= after * 0.999, link
