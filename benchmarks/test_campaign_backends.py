"""Compile/execute-plane benchmarks for the campaign layer.

Pytest surface over the shared bench plane: the 50-task cold/warm
compile-cache pair and the pooled-backend matrix live in
:mod:`repro.bench.domains.campaign_backends`. This module runs the
cold/warm pair through the harness and asserts the exact cache
accounting plus the generous smoke floor; byte-identity across
backends is the verify suite's ``diff_backend_equivalence`` oracle, and
wall-time regressions are gated baseline-relative in CI.
"""

from __future__ import annotations

from repro.bench import check_smoke, run_benchmarks
from repro.bench.domains.campaign_backends import N_TASKS


def test_compile_cache_cold_vs_warm():
    doc = run_benchmarks(["campaign.compile_cold",
                          "campaign.compile_warm"],
                         repeats=2, warmup=0)
    cold = doc.results["campaign.compile_cold"]
    warm = doc.results["campaign.compile_warm"]

    assert warm.metrics["compile_builds"] == 1, (
        "expected exactly one compile for the campaign's single "
        f"(preset, seed, fingerprint) world, got "
        f"{warm.metrics['compile_builds']:g}")
    assert warm.metrics["compile_cache_hits"] >= N_TASKS
    print(f"cold {cold.min_s:.3f}s warm {warm.min_s:.3f}s "
          f"speedup {cold.min_s / warm.min_s:.1f}x over {N_TASKS} tasks")

    violations = check_smoke(doc)
    assert not violations, "\n".join(violations)


def test_pooled_backends_complete_the_campaign():
    doc = run_benchmarks(["campaign.backend_thread"], repeats=1,
                         warmup=0)
    result = doc.results["campaign.backend_thread"]
    assert result.metrics["n_tasks"] == N_TASKS
    print(f"thread backend, 4 workers: {result.min_s:.3f}s")
