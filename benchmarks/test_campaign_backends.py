"""Compile/execute-plane benchmark for the campaign layer.

Runs the acceptance workload of the compile-plane PR — a 50-task
single-world ``survey_pair`` campaign — cold (compile cache disabled,
no precompilation: the pre-PR behaviour, every task builds its testbed
from scratch) and warm (content-addressed cache + precompiled template,
each task forking a private view), then times the warm campaign under
every execution backend.  Asserts the headline ≥3x cold→warm speedup
and that the cache compiled exactly one world for the 50 tasks.

Set ``BENCH_CAMPAIGN_JSON=<path>`` to also write the timings as JSON;
CI uploads that file as the ``BENCH_campaign`` artifact.
"""

from __future__ import annotations

import itertools
import json
import os
import time

from repro.campaign import run_campaign, spec_grid
from repro.compile import compile_cache_disabled, reset_compile_cache
from repro.obs.metrics import global_registry

#: The acceptance workload: 50 survey tasks sharing one compiled world.
N_TASKS = 50
PRESET = "mini3"
SEED = 7

#: Acceptance floor for the warm-cache campaign over the cold one.
MIN_SPEEDUP = 3.0


def _survey_specs():
    """50 distinct ``survey_pair`` specs over one ``(preset, seed)``."""
    pairs = itertools.cycle(
        [(i, j) for i in range(3) for j in range(3) if i != j])
    specs = []
    for k, (src, dst) in zip(range(N_TASKS), pairs):
        specs.extend(spec_grid(
            "survey_pair", [PRESET], [SEED],
            {"hour": [8.0 + k * 0.25]},
            src=src, dst=dst, duration_s=0.5, interval_s=0.5))
    assert len(specs) == N_TASKS
    return specs


def _run(specs, path, *, backend, workers, cold=False):
    """One timed campaign; returns (elapsed_s, artifact_bytes)."""
    reset_compile_cache()
    start = time.perf_counter()
    if cold:
        with compile_cache_disabled():
            stats = run_campaign(specs, path, workers=workers,
                                 backend=backend, precompile=False,
                                 resume=False)
    else:
        stats = run_campaign(specs, path, workers=workers,
                             backend=backend, resume=False)
    elapsed = time.perf_counter() - start
    assert stats.completed == N_TASKS
    return elapsed, path.read_bytes()


def test_backend_matrix_and_compile_cache_speedup(tmp_path, once):
    specs = _survey_specs()

    def experiment():
        timings = {}
        reg = global_registry()

        # Best-of-2 on the asserted cold/warm pair: one campaign is
        # short enough that scheduler noise can move the ratio.
        cold_runs = [_run(specs, tmp_path / f"cold{k}.jsonl",
                          backend="inline", workers=0, cold=True)
                     for k in range(2)]
        cold_s = min(elapsed for elapsed, _ in cold_runs)
        reference = cold_runs[0][1]
        timings["inline_cold_cache"] = {"elapsed_s": cold_s}

        builds_before = reg.counter("compile.builds")
        hits_before = reg.counter("compile.cache.hits")
        warm_s, warm_bytes = _run(specs, tmp_path / "warm.jsonl",
                                  backend="inline", workers=0)
        # Counter deltas cover the first warm run only (each _run
        # resets the cache, so the repeat would double the build count).
        warm_builds = reg.counter("compile.builds") - builds_before
        warm_hits = reg.counter("compile.cache.hits") - hits_before
        warm_s = min(warm_s, _run(specs, tmp_path / "warm2.jsonl",
                                  backend="inline", workers=0)[0])
        timings["inline_warm_cache"] = {
            "elapsed_s": warm_s,
            "compile_builds": warm_builds,
            "compile_cache_hits": warm_hits,
        }
        assert warm_bytes == reference  # caching never moves a byte

        for backend, workers in [("process", 4), ("thread", 4),
                                 ("chunked", 4)]:
            elapsed, blob = _run(
                specs, tmp_path / f"{backend}.jsonl",
                backend=backend, workers=workers)
            assert blob == reference, backend
            timings[f"{backend}_w{workers}"] = {"elapsed_s": elapsed}

        timings["speedup_warm_vs_cold"] = cold_s / warm_s
        timings["n_tasks"] = N_TASKS
        return timings

    timings = once(experiment)

    out_path = os.environ.get("BENCH_CAMPAIGN_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(timings, fh, indent=2, sort_keys=True)
            fh.write("\n")

    for name in sorted(k for k, v in timings.items()
                       if isinstance(v, dict)):
        print(f"{name}: {timings[name]['elapsed_s']:.3f}s")
    speedup = timings["speedup_warm_vs_cold"]
    print(f"warm-vs-cold speedup: {speedup:.1f}x over {N_TASKS} tasks")

    warm = timings["inline_warm_cache"]
    assert warm["compile_builds"] == 1, (
        "expected exactly one compile for the campaign's single "
        f"(preset, seed, fingerprint) world, got {warm['compile_builds']}")
    assert warm["compile_cache_hits"] >= N_TASKS
    assert speedup >= MIN_SPEEDUP, (
        f"warm compile cache is only {speedup:.1f}x faster than cold "
        f"(floor: {MIN_SPEEDUP}x)")
