"""Fig. 15: BLE is an exact linear estimator of UDP throughput.

Paper: saturated 4-minute tests on all 144 links; fitting BLE against
average throughput yields ``BLE = 1.7 T − 0.65`` with normally-distributed
residuals. We reproduce the fit over all formed links with thinned sampling.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.stats import linear_fit
from repro.units import MBPS


def test_fig15_linear_fit(testbed, t_work, once):
    def experiment():
        pairs = []
        for i, j in testbed.same_board_pairs():
            link = testbed.plc_link(i, j)
            samples = [(link.avg_ble_bps(t_work + k * 5.0),
                        link.throughput_bps(t_work + k * 5.0))
                       for k in range(12)]
            ble = np.mean([s[0] for s in samples]) / MBPS
            thr = np.mean([s[1] for s in samples]) / MBPS
            if thr > 1.0:
                pairs.append((thr, ble))
        return pairs

    pairs = once(experiment)
    thr = np.array([p[0] for p in pairs])
    ble = np.array([p[1] for p in pairs])
    fit = linear_fit(thr, ble)

    print()
    print(format_table(
        ["quantity", "paper", "measured"],
        [
            ["slope (BLE per Mbps of T)", 1.7, fit.slope],
            ["intercept (Mbps)", -0.65, fit.intercept],
            ["R^2", ">0.99", fit.r_squared],
            ["residuals normal (Shapiro p)", ">0.05",
             fit.residual_normality_pvalue],
            ["links fitted", 144, len(pairs)],
        ],
        title="Fig. 15 — BLE vs throughput linear fit"))

    assert fit.slope == np.clip(fit.slope, 1.55, 1.85)
    assert abs(fit.intercept) < 5.0
    assert fit.r_squared > 0.97
    assert len(pairs) > 100
