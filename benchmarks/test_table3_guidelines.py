"""Table 3: the link-metric estimation guidelines, validated as policy.

For every guideline row we (a) generate the recommendation from measured
link state and (b) show that the audit engine flags a setup violating it.
"""

from repro.analysis.reporting import format_table
from repro.core.classification import LinkQuality, classify_ble
from repro.core.guidelines import LinkState, audit_schedule, recommend
from repro.core.probing import ProbeSchedule
from repro.units import MBPS


def test_table3_guideline_engine(testbed, t_work, once):
    def experiment():
        out = []
        for (i, j) in [(13, 14), (2, 7), (11, 4)]:
            link = testbed.plc_link(i, j)
            rev = testbed.plc_link(j, i)
            state = LinkState(
                ble_fwd_bps=link.avg_ble_bps(t_work),
                ble_rev_bps=rev.avg_ble_bps(t_work),
                contended=(i, j) == (2, 7))
            out.append(((i, j), state, recommend(state)))
        return out

    recommendations = once(experiment)
    rows = []
    for (i, j), state, rec in recommendations:
        quality = classify_ble(state.ble_fwd_bps).value
        rows.append([f"{i}-{j}", quality,
                     f"{rec.schedule.interval_s:g}s",
                     rec.schedule.payload_bytes,
                     rec.schedule.burst_packets,
                     "unicast" if rec.unicast else "broadcast"])
    print()
    print(format_table(
        ["link", "class", "interval", "probe bytes", "burst", "mode"],
        rows, title="Table 3 — generated probing prescriptions"))

    # The engine respects every guideline.
    for (i, j), state, rec in recommendations:
        quality = classify_ble(state.ble_fwd_bps)
        violations = audit_schedule(
            rec.schedule, unicast=rec.unicast,
            averages_over_slots=rec.average_over_slots,
            probes_both_directions=rec.probe_both_directions,
            link_quality=quality, contended=state.contended)
        assert violations == [], f"{i}-{j}: {violations}"

    # And the audit catches a maximally-wrong setup (every row of Table 3).
    wrong = audit_schedule(
        ProbeSchedule(interval_s=60.0, payload_bytes=256),
        unicast=False, averages_over_slots=False,
        probes_both_directions=False, link_quality=LinkQuality.BAD,
        contended=True)
    assert len(wrong) == 6
    print(f"audit flags on a non-compliant setup: "
          f"{sorted(v.guideline for v in wrong)}")
