"""Fig. 12: random-scale variation over 2 days, 1-minute averages.

Paper: throughput+PBerr for link 15-16 and BLE+PBerr for link 0-1 over two
days. Every day at 9 pm all building lights switch off → a visible upward
step in link quality; working hours (high electrical load) depress the mean.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.metrics import MetricSeries
from repro.core.variation import detect_daily_event
from repro.sim.clock import MainsClock
from repro.testbed.experiments import long_run_series
from repro.units import DAY, MBPS, MINUTE


def test_fig12_two_day_run(testbed, once):
    t0 = MainsClock.at(day=1, hour=15.0)  # Tuesday 3 pm, as in the figure

    def experiment():
        out = {}
        for (i, j) in [(15, 16), (0, 1)]:
            out[(i, j, "ble")] = long_run_series(
                testbed, i, j, t0, 2 * DAY, interval=MINUTE, metric="ble")
            out[(i, j, "pberr")] = long_run_series(
                testbed, i, j, t0, 2 * DAY, interval=MINUTE, metric="pberr")
        return out

    series = once(experiment)
    clock = MainsClock()
    rows = []
    for (i, j, metric), s in series.items():
        work = [v for t, v in zip(s.times, s.values)
                if clock.is_working_hours(t)]
        night = [v for t, v in zip(s.times, s.values)
                 if 22.0 <= clock.hour_of_day(t) or clock.hour_of_day(t) < 6]
        scale = MBPS if metric == "ble" else 1.0
        rows.append([f"{i}-{j}", metric, np.mean(work) / scale,
                     np.mean(night) / scale])
    print()
    print(format_table(
        ["link", "metric", "working hours", "night"],
        rows, title="Fig. 12 — 2-day run (BLE in Mbps, PBerr raw)"))

    for (i, j) in [(15, 16), (0, 1)]:
        ble = series[(i, j, "ble")]
        pberr = series[(i, j, "pberr")]
        # Lights-off at 21:00 raises BLE (both days pooled).
        shift = detect_daily_event(ble, event_hour=21.0)
        assert shift > 0, f"9 pm lights-off should raise BLE on {i}-{j}"
        # Working hours depress the mean relative to night.
        work_mean = np.mean([v for t, v in zip(ble.times, ble.values)
                             if clock.is_working_hours(t)])
        night_mean = np.mean([v for t, v in zip(ble.times, ble.values)
                              if clock.hour_of_day(t) >= 22.0
                              or clock.hour_of_day(t) < 6.0])
        assert night_mean > work_mean
        # PBerr must not degrade when the load drops: the tone maps re-adapt
        # and hold the error rate near its target, so the 9 pm shift is
        # essentially zero (the visible signal lives in BLE/throughput).
        pberr_shift = detect_daily_event(pberr, event_hour=21.0)
        assert abs(pberr_shift) < 5e-3
