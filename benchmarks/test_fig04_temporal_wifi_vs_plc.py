"""Fig. 4: concurrent temporal variation of WiFi and PLC capacity.

Paper: capacity traces (MCS- and BLE-derived) on a good link (3-8, started
4:30 pm) and an average link (4-0, started 11:30 am) over ~2-3 hours of
working time. Shapes: WiFi capacity swings hard on both; PLC is nearly flat
on the good link — even people leaving at 6 pm barely move it — and varies
more on the average link.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.sim.clock import MainsClock
from repro.units import MBPS
from repro.wifi.phy import DCF_EFFICIENCY


def _capacity_traces(testbed, i, j, t0, duration, interval=10.0):
    plc = testbed.plc_link(i, j)
    wifi = testbed.wifi_link(i, j)
    times = np.arange(t0, t0 + duration, interval)
    plc_cap = np.array([plc.avg_ble_bps(t) for t in times]) / MBPS
    wifi_cap = np.array([wifi.phy_rate_bps(t) * DCF_EFFICIENCY
                         for t in times]) / MBPS
    return times, plc_cap, wifi_cap


def _pick_fig4_pairs(testbed, t0):
    """The paper's links: good PLC + variable WiFi (3-8), and an average
    pair (4-0). Select equivalents: WiFi must be in its rate-adapting
    regime (otherwise its MCS trace is a flat ceiling)."""
    good_candidates = []
    average = None
    for i, j in testbed.same_board_pairs():
        wifi_mean = 0.65 * np.mean(
            [testbed.wifi_link(i, j).phy_rate_bps(t0 + k * 0.5)
             for k in range(10)])
        link = testbed.plc_link(i, j)
        ble = link.avg_ble_bps(t0)
        if ble > 118e6 and 15e6 < wifi_mean < 90e6:
            good_candidates.append((i, j))
        elif average is None and 40e6 < ble < 90e6 and (
                15e6 < wifi_mean < 70e6):
            average = (i, j)
    assert good_candidates and average, "no suitable Fig. 4 pairs found"
    # Good: of the fast candidates, the one whose receiver sits in the
    # quietest neighbourhood (smallest short-window BLE wiggle) — the
    # paper's 3-8 is a fast *and* calm link.
    def short_cv(pair):
        link = testbed.plc_link(*pair)
        probe = [link.avg_ble_bps(t0 + k * 5.0) for k in range(12)]
        return np.std(probe) / np.mean(probe)

    good = min(good_candidates, key=short_cv)
    return good, average


def test_fig04_temporal_variation(testbed, once):
    def experiment():
        good_t0 = MainsClock.at(day=2, hour=16.5)   # "4:30 pm"
        avg_t0 = MainsClock.at(day=2, hour=11.5)    # "11:30 am"
        good, average = _pick_fig4_pairs(testbed, good_t0)
        return {
            "good": _capacity_traces(testbed, *good, good_t0, 7000),
            "average": _capacity_traces(testbed, *average, avg_t0, 10000),
        }

    traces = once(experiment)

    def detrended_cv(values, window=60):
        """Short-term variability: residual around a 10-min rolling mean.

        This is the visual content of Fig. 4 — the *wiggle* of each trace —
        separated from the slow random-scale drift both media share (the
        evening load change moves the PLC mean too, but smoothly).
        """
        kernel = np.ones(window) / window
        trend = np.convolve(values, kernel, mode="same")
        residual = values - trend
        core = slice(window, -window)  # drop the convolution edges
        return float(np.std(residual[core]) / np.mean(values))

    rows = []
    stats = {}
    for name, (times, plc_cap, wifi_cap) in traces.items():
        stats[name] = {
            "plc_cv": detrended_cv(plc_cap),
            "wifi_cv": detrended_cv(wifi_cap),
            "plc_drift": plc_cap.std() / plc_cap.mean(),
        }
        rows.append([name, plc_cap.mean(), plc_cap.std(),
                     wifi_cap.mean(), wifi_cap.std()])
    print()
    print(format_table(
        ["link", "PLC mean", "PLC std", "WiFi mean", "WiFi std"],
        rows, title="Fig. 4 — capacity over working hours (Mbps)"))

    # WiFi wiggles much harder than PLC on both links (the figure's
    # visual), and the good link's PLC trace is nearly flat short-term.
    for name in ("good", "average"):
        assert stats[name]["wifi_cv"] > 2 * stats[name]["plc_cv"]
    assert stats["good"]["plc_cv"] < 0.05
    # Slow drift (evening load change) stays bounded on the good link —
    # "almost not affected by people leaving the premises".
    assert stats["good"]["plc_drift"] < 0.25
