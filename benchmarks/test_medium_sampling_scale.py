"""Batch-sampling scale benchmark for the ``repro.medium`` contract.

Pytest surface over the shared bench plane: the actual measurements —
scalar ``sample`` loop vs vectorized ``sample_series`` on the §4.1
survey window for both media — are the registered
``medium.*`` benchmarks in :mod:`repro.bench.domains.medium`. This
module runs them through :func:`repro.bench.run_benchmarks` (reduced
repeats: pytest is the quick local loop; the CI gate runs the full
schedule via ``repro bench run --all``) and asserts the generous smoke
floor. Regression gating is baseline-relative — see
``benchmarks/baselines/`` and ``repro bench compare``.
"""

from __future__ import annotations

from repro.bench import check_smoke, run_benchmarks

MEDIUM_BENCHMARKS = (
    "medium.plc.sample_scalar",
    "medium.plc.sample_series",
    "medium.wifi.sample_scalar",
    "medium.wifi.sample_series",
)


def test_sample_series_speedup_on_survey_window():
    doc = run_benchmarks(MEDIUM_BENCHMARKS, repeats=2, warmup=1)

    for medium in ("plc", "wifi"):
        scalar = doc.results[f"medium.{medium}.sample_scalar"]
        series = doc.results[f"medium.{medium}.sample_series"]
        assert scalar.metrics["n_samples"] == 3000
        assert series.metrics["n_samples"] == 3000
        print(f"{medium}: scalar {scalar.min_s:.2f}s "
              f"batch {series.min_s:.3f}s "
              f"speedup {scalar.min_s / series.min_s:.1f}x")

    violations = check_smoke(doc)
    assert not violations, "\n".join(violations)
