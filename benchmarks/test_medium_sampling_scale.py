"""Batch-sampling scale benchmark for the ``repro.medium`` contract.

Times the scalar ``sample`` loop against the vectorized ``sample_series``
on the paper's §4.1 survey window — 5 minutes at 100 ms, 3000 samples —
for both media, and asserts the contract's headline speedup (≥5x each).
The batch paths win by evaluating the PHY chain once per piecewise-
constant channel interval (PLC) or coherence block (WiFi) instead of
once per timestamp, while staying bit-identical to the scalar loop
(``tests/test_medium_contract.py``).

Set ``BENCH_MEDIUM_JSON=<path>`` to also write the timings as JSON; CI
uploads that file as the ``BENCH_medium`` artifact.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

#: The §4.1 survey window: 5 minutes of 100 ms reports.
SURVEY_DURATION_S = 300.0
SURVEY_INTERVAL_S = 0.1

#: Acceptance floor for sample_series over the scalar loop, per medium.
MIN_SPEEDUP = 5.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _measure(link, ts: np.ndarray) -> dict:
    """Scalar-vs-batch wall time on one link (noise-free: pure model)."""
    scalar, scalar_s = _timed(
        lambda: [link.sample(float(t), measured=False) for t in ts])
    series, batch_s = _timed(
        lambda: link.sample_series(ts, measured=False))
    assert len(scalar) == len(series) == len(ts)
    return {
        "n_samples": int(len(ts)),
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
    }


def test_sample_series_speedup_on_survey_window(testbed, t_work, once):
    ts = t_work + np.arange(0.0, SURVEY_DURATION_S, SURVEY_INTERVAL_S)

    def experiment():
        return {
            "plc": _measure(testbed.plc_link(0, 1), ts),
            "wifi": _measure(testbed.wifi_link(0, 1), ts),
        }

    timings = once(experiment)

    out_path = os.environ.get("BENCH_MEDIUM_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(timings, fh, indent=2, sort_keys=True)
            fh.write("\n")

    for medium, row in sorted(timings.items()):
        print(f"{medium}: scalar {row['scalar_s']:.2f}s "
              f"batch {row['batch_s']:.3f}s "
              f"speedup {row['speedup']:.1f}x over {row['n_samples']} samples")
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{medium} sample_series is only "
            f"{row['speedup']:.1f}x faster than the scalar loop "
            f"(floor: {MIN_SPEEDUP}x)")
