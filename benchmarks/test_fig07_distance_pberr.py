"""Fig. 7: throughput vs cable distance (AV and AV500); PBerr vs throughput.

Paper shapes:

* clear throughput degradation with cable distance, with a wide spread at
  any given distance;
* short distances (< 30 m) guarantee good links; 30–100 m can be anything;
* AV500 lifts rates everywhere and revives some links that are dead on AV
  (with severe asymmetries);
* PBerr decreases as throughput increases (right panel).
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.stats import pearson
from repro.units import MBPS


def _survey(testbed, t_work):
    rows = []
    for i, j in testbed.same_board_pairs():
        link = testbed.plc_link(i, j)
        thr = float(np.mean([link.throughput_bps(t_work + k, measured=False)
                             for k in range(5)])) / MBPS
        rows.append((i, j, testbed.cable_distance(i, j), thr,
                     link.pb_err(t_work)))
    return rows


def test_fig07_distance_and_pberr(testbed, testbed_av500, t_work, once):
    def experiment():
        return {"AV": _survey(testbed, t_work),
                "AV500": _survey(testbed_av500, t_work)}

    surveys = once(experiment)
    table = []
    for tech, rows in surveys.items():
        d = np.array([r[2] for r in rows])
        t = np.array([r[3] for r in rows])
        for lo, hi in [(0, 30), (30, 60), (60, 120)]:
            m = (d >= lo) & (d < hi)
            table.append([tech, f"{lo}-{hi} m", int(m.sum()),
                          t[m].min(), t[m].max(), t[m].mean()])
    print()
    print(format_table(
        ["tech", "cable distance", "links", "min", "max", "mean"],
        table, title="Fig. 7 — throughput (Mbps) vs cable distance"))

    av = surveys["AV"]
    av500 = surveys["AV500"]
    d = np.array([r[2] for r in av])
    t_av = np.array([r[3] for r in av])
    t_500 = np.array([r[3] for r in av500])
    pbe = np.array([r[4] for r in av])

    # Degradation with distance, wide spread at long range.
    assert pearson(d, t_av) < -0.5
    short = t_av[d < 30]
    longr = t_av[(d >= 30) & (d < 100)]
    assert short.min() > 10.0          # short distances guarantee good links
    assert longr.max() > 3 * max(longr.min(), 1.0)  # wide spread

    # AV500 dominates AV and revives some dead-on-AV links.
    assert t_500.mean() > 1.5 * t_av.mean()
    assert t_500.max() > 150.0         # paper's axis reaches ~240 Mbps
    # "Some links with no AV connectivity still enjoy a non-zero
    # throughput" on AV500 (the paper's 10-2 example was slow and 10x
    # asymmetric — revival means usable-at-all, not fast).
    revived = ((t_av < 1.0) & (t_500 > 1.0)).sum()
    assert revived >= 1

    # PBerr decreases as throughput increases (alive links only).
    alive = t_av > 1.0
    assert pearson(t_av[alive], pbe[alive]) < -0.3
    print(f"AV500 revived links (dead on AV): {revived}; "
          f"corr(T, PBerr) = {pearson(t_av[alive], pbe[alive]):.2f}")
